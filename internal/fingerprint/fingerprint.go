// Package fingerprint implements the paper's second end-to-end attack
// (§VI): identifying which file Bzip2 is compressing by Flush+Reload
// monitoring of two cache lines — the entry points of mainSort() and
// fallbackSort() in the shared libbz2. The input-dependent control flow
// of Fig 6 (full blocks → mainSort, short/degenerate blocks →
// fallbackSort, too-repetitive blocks → abandon mid-way) gives each file
// a distinctive 2×10,000 boolean trace, which a small neural network
// classifies (Figs 7 and 8).
package fingerprint

import (
	"fmt"
	"math/rand"

	"github.com/zipchannel/zipchannel/internal/attacker"
	"github.com/zipchannel/zipchannel/internal/cache"
	"github.com/zipchannel/zipchannel/internal/compress/bwt"
	"github.com/zipchannel/zipchannel/internal/corpus"
	"github.com/zipchannel/zipchannel/internal/nn"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"
)

// Func identifies which sorting function is executing.
type Func uint8

// Sorting functions, the two monitored cache lines.
const (
	FuncNone Func = iota
	FuncMain
	FuncFallback
)

// Interval is a time span during which one function executes.
type Interval struct {
	Start, End uint64 // cycles
	Fn         Func
}

// Timeline is the victim's execution profile: which sort function ran
// when, in abstract cycles derived from the compressor's reported work.
type Timeline struct {
	Intervals []Interval
	Total     uint64
}

// timelineTracer converts bwt.Tracer callbacks into a Timeline. Work
// units map 1:1 to cycles; block setup (RLE1/MTF/Huffman) contributes
// per-block overhead outside both functions.
type timelineTracer struct {
	bwt.BaseTracer
	tl        *Timeline
	cur       Func
	curStart  uint64
	now       uint64
	blockOver uint64
}

func (t *timelineTracer) flush() {
	if t.cur != FuncNone && t.now > t.curStart {
		t.tl.Intervals = append(t.tl.Intervals, Interval{Start: t.curStart, End: t.now, Fn: t.cur})
	}
	t.cur = FuncNone
}

// BlockStart implements bwt.Tracer.
func (t *timelineTracer) BlockStart(_, rawLen int) {
	t.flush()
	// Non-sort work between blocks (RLE1, MTF, Huffman of the previous
	// block): neither monitored line is touched.
	t.now += t.blockOver + uint64(rawLen)
}

// MainSortEnter implements bwt.Tracer.
func (t *timelineTracer) MainSortEnter() {
	t.flush()
	t.cur = FuncMain
	t.curStart = t.now
}

// MainSortAbandon implements bwt.Tracer.
func (t *timelineTracer) MainSortAbandon(int) {
	t.flush()
}

// FallbackSortEnter implements bwt.Tracer.
func (t *timelineTracer) FallbackSortEnter() {
	t.flush()
	t.cur = FuncFallback
	t.curStart = t.now
}

// Work implements bwt.Tracer.
func (t *timelineTracer) Work(units int) {
	t.now += uint64(units)
}

// BuildTimeline compresses data and returns the victim's sort-function
// timeline.
func BuildTimeline(data []byte, opts bwt.Options) (*Timeline, error) {
	tl := &Timeline{}
	tr := &timelineTracer{tl: tl, blockOver: 2000}
	opts.Tracer = tr
	if _, err := bwt.Compress(data, opts); err != nil {
		return nil, fmt.Errorf("fingerprint: %w", err)
	}
	tr.flush()
	tl.Total = tr.now
	return tl, nil
}

// ActiveAt reports which function is executing at the given cycle.
func (tl *Timeline) ActiveAt(cycle uint64) Func {
	for _, iv := range tl.Intervals {
		if cycle >= iv.Start && cycle < iv.End {
			return iv.Fn
		}
	}
	return FuncNone
}

// activeIn reports whether fn executed at any point in (lo, hi].
func (tl *Timeline) activeIn(fn Func, lo, hi uint64) bool {
	for _, iv := range tl.Intervals {
		if iv.Fn == fn && iv.Start < hi && iv.End > lo {
			return true
		}
	}
	return false
}

// NumSamples is the trace length the paper's attacker records ("an
// additional 10,000 iterations", §VI).
const NumSamples = 10000

// Shared-library line addresses of the two monitored function entries;
// arbitrary but fixed, as a real libbz2 mapping would be.
const (
	mainSortLine     = uint64(0x7f40_0000_1000)
	fallbackSortLine = uint64(0x7f40_0000_2440)
)

// SampleConfig tunes the Flush+Reload sampling loop.
type SampleConfig struct {
	// Period is the victim cycles between consecutive attacker samples.
	Period uint64
	// Samples is the trace length (default NumSamples).
	Samples int
	// PhaseJitter shifts the first sample by up to this many cycles,
	// modelling unsynchronized attacker/victim starts.
	PhaseJitter uint64
	// NoiseRate is the expected unrelated shared-library accesses per
	// sample interval (false-hit source); 0 disables.
	NoiseRate float64
	Seed      int64

	// Obs receives the sampling telemetry (fp.samples, fr.* and cache.*
	// counters); nil disables.
	Obs *obs.Registry `json:"-"`
}

// Trace is one recorded 2xN Flush+Reload observation: row 0 monitors
// mainSort, row 1 fallbackSort.
type Trace struct {
	Main     []bool
	Fallback []bool
}

// Sample runs the Flush+Reload loop against the timeline through the
// simulated cache: per interval, the active function's entry line is
// (re)fetched by the victim, and the attacker reloads + flushes both
// monitored lines.
func (tl *Timeline) Sample(cfg SampleConfig) *Trace {
	if cfg.Samples == 0 {
		cfg.Samples = NumSamples
	}
	if cfg.Period == 0 {
		cfg.Period = 1 + tl.Total/uint64(cfg.Samples)
	}
	c := cache.New(cache.Config{Seed: cfg.Seed, Obs: cfg.Obs})
	fr := attacker.NewFlushReload(c, 2)
	fr.AttachObs(cfg.Obs)
	fr.Calibrate(0x600000, 64)
	samples := cfg.Obs.Counter("fp.samples")
	noise := cache.NewNoise(3, cfg.NoiseRate, mainSortLine-1<<14, fallbackSortLine+1<<14, cfg.Seed+7)

	tr := &Trace{
		Main:     make([]bool, cfg.Samples),
		Fallback: make([]bool, cfg.Samples),
	}
	fr.Flush(mainSortLine, fallbackSortLine)
	prev := cfg.PhaseJitter
	idx := 0 // monotonic sweep over the (ordered) intervals
	for s := 0; s < cfg.Samples; s++ {
		now := prev + cfg.Period
		// Victim instruction fetches during (prev, now].
		for idx < len(tl.Intervals) && tl.Intervals[idx].End <= prev {
			idx++
		}
		for k := idx; k < len(tl.Intervals) && tl.Intervals[k].Start < now; k++ {
			if tl.Intervals[k].Fn == FuncMain {
				c.Access(1, mainSortLine)
			} else {
				c.Access(1, fallbackSortLine)
			}
		}
		noise.Tick(c)
		tr.Main[s] = fr.Reload(mainSortLine)
		tr.Fallback[s] = fr.Reload(fallbackSortLine)
		samples.Inc()
		prev = now
	}
	return tr
}

// PoolWidth is the feature width per monitored line: 10,000 samples
// max-pooled 10:1 into the paper's 2x1,000 input tensor.
const PoolWidth = 1000

// Features converts a trace into the classifier's input vector
// (max-pooled, values 0/1; an all-idle trace is encoded as the paper's
// timeout value 2).
func Features(tr *Trace) []float64 {
	out := make([]float64, 2*PoolWidth)
	pool := func(row []bool, dst []float64) bool {
		if len(row) == 0 {
			return false
		}
		step := (len(row) + PoolWidth - 1) / PoolWidth
		any := false
		for i := 0; i < PoolWidth; i++ {
			lo := i * step
			hi := min(lo+step, len(row))
			for k := lo; k < hi; k++ {
				if row[k] {
					dst[i] = 1
					any = true
					break
				}
			}
		}
		return any
	}
	anyMain := pool(tr.Main, out[:PoolWidth])
	anyFall := pool(tr.Fallback, out[PoolWidth:])
	if !anyMain && !anyFall {
		// The paper encodes a 5-second timeout with the value 2.
		for i := range out {
			out[i] = 2
		}
	}
	return out
}

// DatasetConfig tunes dataset generation.
type DatasetConfig struct {
	TracesPerFile int // default 40
	BlockSize     int // bwt block size (default: bwt default = 10000)
	WorkFactor    int
	NoiseRate     float64
	// PeriodJitterFrac varies each trace's effective sampling period by
	// up to this fraction, modelling run-to-run victim timing variation
	// (frequency scaling, co-runners) that real traces exhibit.
	PeriodJitterFrac float64
	Seed             int64

	// Parallelism fans independent traces (and per-file timelines) across
	// this many goroutines; <= 1 is sequential. Every trace derives its
	// RNG from its (file, repetition) slot, so the dataset is
	// byte-identical at any parallelism level.
	Parallelism int

	// Obs receives dataset-generation telemetry: the fp.timelines and
	// fp.traces counters, plus an fp.build_dataset span whose wall time
	// lands in WallTotals (never in snapshots).
	Obs *obs.Registry `json:"-"`
}

// BuildDataset generates labelled Flush+Reload traces for the corpus:
// label i = files[i]. The sample period is fixed across the corpus
// (calibrated so the longest compression fits the trace), as a real
// attacker's fixed sampling rate would be.
//
// With cfg.Parallelism > 1, timelines and traces are generated across a
// worker pool. Each trace owns its slot in the output and carries its
// own seed; the per-trace period jitter is drawn sequentially up front
// from the dataset RNG. The resulting dataset is therefore
// byte-identical to a sequential run.
func BuildDataset(files []corpus.File, cfg DatasetConfig) ([]nn.Sample, error) {
	if cfg.TracesPerFile == 0 {
		cfg.TracesPerFile = 40
	}
	span := cfg.Obs.StartSpan("fp.build_dataset")
	defer span.End()
	timelineCtr := cfg.Obs.Counter("fp.timelines")
	traceCtr := cfg.Obs.Counter("fp.traces")
	timelines := make([]*Timeline, len(files))
	err := par.ForEach(cfg.Parallelism, len(files), func(i int) error {
		tl, err := BuildTimeline(files[i].Data, bwt.Options{BlockSize: cfg.BlockSize, WorkFactor: cfg.WorkFactor})
		if err != nil {
			return fmt.Errorf("fingerprint: %s: %w", files[i].Name, err)
		}
		timelines[i] = tl
		timelineCtr.Inc()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var maxTotal uint64
	for _, tl := range timelines {
		if tl.Total > maxTotal {
			maxTotal = tl.Total
		}
	}
	period := 1 + maxTotal/uint64(NumSamples-500)

	// Per-trace periods come from one sequential pass over the dataset
	// RNG, so the jitter stream does not depend on trace scheduling.
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := len(files) * cfg.TracesPerFile
	periods := make([]uint64, total)
	for k := range periods {
		p := period
		if cfg.PeriodJitterFrac > 0 {
			scale := 1 + cfg.PeriodJitterFrac*(2*rng.Float64()-1)
			p = uint64(float64(period) * scale)
			if p == 0 {
				p = 1
			}
		}
		periods[k] = p
	}

	out := make([]nn.Sample, total)
	err = par.ForEach(cfg.Parallelism, total, func(k int) error {
		i, r := k/cfg.TracesPerFile, k%cfg.TracesPerFile
		seed := cfg.Seed + int64(i*100003+r*7919)
		p := periods[k]
		tr := timelines[i].Sample(SampleConfig{
			Period:      p,
			PhaseJitter: uint64(seed%31) * p / 31,
			NoiseRate:   cfg.NoiseRate,
			Seed:        seed,
			Obs:         cfg.Obs,
		})
		out[k] = nn.Sample{X: Features(tr), Label: i}
		traceCtr.Inc()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
