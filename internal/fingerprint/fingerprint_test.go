package fingerprint

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/zipchannel/zipchannel/internal/compress/bwt"
	"github.com/zipchannel/zipchannel/internal/corpus"
	"github.com/zipchannel/zipchannel/internal/nn"
)

func TestTimelineStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 25000) // 2 full blocks + short tail
	rng.Read(data)
	tl, err := BuildTimeline(data, bwt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mains, falls int
	var prevEnd uint64
	for _, iv := range tl.Intervals {
		if iv.Start < prevEnd {
			t.Errorf("intervals overlap: %+v starts before %d", iv, prevEnd)
		}
		if iv.End <= iv.Start {
			t.Errorf("empty interval %+v", iv)
		}
		prevEnd = iv.End
		switch iv.Fn {
		case FuncMain:
			mains++
		case FuncFallback:
			falls++
		}
	}
	if mains != 2 {
		t.Errorf("mainSort intervals = %d, want 2", mains)
	}
	if falls != 1 {
		t.Errorf("fallbackSort intervals = %d, want 1 (short tail)", falls)
	}
	if tl.Total < prevEnd {
		t.Error("total duration shorter than last interval")
	}
}

func TestTimelineRepetitiveAbandons(t *testing.T) {
	data := bytes.Repeat([]byte("xy"), 5000) // one full repetitive block
	tl, err := BuildTimeline(data, bwt.Options{WorkFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Expect a main interval followed by a fallback interval.
	var seq []Func
	for _, iv := range tl.Intervals {
		seq = append(seq, iv.Fn)
	}
	if len(seq) < 2 || seq[0] != FuncMain || seq[len(seq)-1] != FuncFallback {
		t.Errorf("abandonment sequence = %v, want main then fallback", seq)
	}
}

func TestSampleDetectsActivity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 15000)
	rng.Read(data)
	tl, err := BuildTimeline(data, bwt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := tl.Sample(SampleConfig{Samples: 2000, Seed: 3})
	mainHits, fallHits := 0, 0
	for i := range tr.Main {
		if tr.Main[i] {
			mainHits++
		}
		if tr.Fallback[i] {
			fallHits++
		}
	}
	if mainHits == 0 {
		t.Error("full blocks ran mainSort but no hits recorded")
	}
	if fallHits == 0 {
		t.Error("the short tail ran fallbackSort but no hits recorded")
	}
	// The two monitored lines must be active at disjoint times: no sample
	// index should hit both (the functions never run concurrently).
	for i := range tr.Main {
		if tr.Main[i] && tr.Fallback[i] {
			t.Fatalf("sample %d hit both functions", i)
		}
	}
}

func TestFeaturesShapeAndTimeout(t *testing.T) {
	tr := &Trace{Main: make([]bool, NumSamples), Fallback: make([]bool, NumSamples)}
	f := Features(tr)
	if len(f) != 2*PoolWidth {
		t.Fatalf("feature width = %d, want %d", len(f), 2*PoolWidth)
	}
	for _, v := range f {
		if v != 2 {
			t.Fatal("all-idle trace should be encoded as the timeout value 2")
		}
	}
	tr.Main[5000] = true
	f = Features(tr)
	if f[500] != 1 {
		t.Error("hit at sample 5000 should pool into feature 500")
	}
	if f[0] != 0 {
		t.Error("other features should be 0")
	}
}

func TestBuildDatasetAndLabels(t *testing.T) {
	files := []corpus.File{
		{Name: "a", Data: bytes.Repeat([]byte("ab"), 8000)},
		{Name: "b", Data: func() []byte { b := make([]byte, 16000); rand.New(rand.NewSource(4)).Read(b); return b }()},
	}
	ds, err := BuildDataset(files, DatasetConfig{TracesPerFile: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 6 {
		t.Fatalf("dataset size = %d, want 6", len(ds))
	}
	counts := map[int]int{}
	for _, s := range ds {
		counts[s.Label]++
		if len(s.X) != 2*PoolWidth {
			t.Fatalf("feature width = %d", len(s.X))
		}
	}
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("label counts = %v", counts)
	}
}

// End-to-end mini-Fig-8: two files of very different repetitiveness must
// be distinguishable by the trained classifier.
func TestClassifierSeparatesTwoFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	random := make([]byte, 20000)
	rng.Read(random)
	files := []corpus.File{
		{Name: "repetitive", Data: bytes.Repeat([]byte("lorem ipsum dolor "), 1200)[:20000]},
		{Name: "random", Data: random},
	}
	ds, err := BuildDataset(files, DatasetConfig{TracesPerFile: 30, NoiseRate: 0.05, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	train, _, test := nn.Split(ds, 0.8, 0.0, 11)
	m, err := nn.New(12, 2*PoolWidth, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(train, nn.TrainConfig{Epochs: 15, LR: 0.02}); err != nil {
		t.Fatal(err)
	}
	acc, err := m.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("two-file accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestPeriodJitterDiversifiesTraces(t *testing.T) {
	data := bytes.Repeat([]byte("jitter makes traces vary "), 1000)
	files := []corpus.File{{Name: "f", Data: data}}
	rigid, err := BuildDataset(files, DatasetConfig{TracesPerFile: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	jittered, err := BuildDataset(files, DatasetConfig{TracesPerFile: 4, Seed: 1, PeriodJitterFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	dist := func(a, b []float64) float64 {
		d := 0.0
		for i := range a {
			if a[i] != b[i] {
				d++
			}
		}
		return d
	}
	var rigidD, jitterD float64
	for i := 1; i < 4; i++ {
		rigidD += dist(rigid[0].X, rigid[i].X)
		jitterD += dist(jittered[0].X, jittered[i].X)
	}
	if jitterD <= rigidD {
		t.Errorf("jittered traces (%v differing features) should vary more than rigid ones (%v)",
			jitterD, rigidD)
	}
}

func TestFeaturesShortTrace(t *testing.T) {
	tr := &Trace{Main: make([]bool, 100), Fallback: make([]bool, 100)}
	tr.Main[99] = true
	f := Features(tr)
	if len(f) != 2*PoolWidth {
		t.Fatalf("width = %d", len(f))
	}
	if f[99] != 1 {
		t.Error("short traces pool 1:1; sample 99 should set feature 99")
	}
}
