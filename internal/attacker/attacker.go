// Package attacker implements the two classic cache attack primitives the
// paper builds on: Prime+Probe (Osvik et al.) against the simulated LLC,
// with eviction-set construction over an attacker-owned physical buffer
// and latency-threshold calibration, and Flush+Reload (Yarom & Falkner)
// against shared lines.
package attacker

import (
	"errors"
	"fmt"
	"sort"

	"github.com/zipchannel/zipchannel/internal/cache"
	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// ErrNoEvictionSet reports that the attacker's buffer has too few lines
// mapping to the requested cache set.
var ErrNoEvictionSet = errors.New("attacker: cannot build eviction set")

// DefaultTimerSamples is how many readings measure takes of each probed
// line's latency when a noisy timer is armed. k=9 survives up to four
// jittered readings per line.
const DefaultTimerSamples = 9

// PrimeProbe drives the prime/probe cycle for one attacker actor.
type PrimeProbe struct {
	c     *cache.Cache
	actor int

	poolBase  uint64
	poolLines int

	threshold int
	// setLines caches, per global set, the attacker lines mapping to it.
	setLines map[int][]uint64

	// TimerFault, when armed (chaos runs), jitters individual timer
	// readings of probe latencies; TimerSamples readings are taken per
	// line and classified by their median (see measure). Nil or disarmed
	// leaves every measurement byte-identical to a fault-free build.
	TimerFault   *fault.Point
	TimerSamples int

	// Instruments are nil until AttachObs; obs methods no-op on nil.
	primes       *obs.Counter
	probes       *obs.Counter
	probedLines  *obs.Counter
	evictionsObs *obs.Counter
	evsetFail    *obs.Counter
	probeLat     *obs.Histogram
	// reg backs the lazily-registered noisy-read counter so runs without
	// timer faults keep their metric snapshots unchanged.
	reg        *obs.Registry
	noisyReads *obs.Counter
}

// AttachObs registers the attacker's telemetry on reg: pp.primes and
// pp.probes (rounds), pp.probed_lines, pp.evictions_observed (lines over
// threshold), pp.evset_failures, and the pp.probe_latency histogram.
func (p *PrimeProbe) AttachObs(reg *obs.Registry) {
	p.primes = reg.Counter("pp.primes")
	p.probes = reg.Counter("pp.probes")
	p.probedLines = reg.Counter("pp.probed_lines")
	p.evictionsObs = reg.Counter("pp.evictions_observed")
	p.evsetFail = reg.Counter("pp.evset_failures")
	p.probeLat = reg.Histogram("pp.probe_latency")
	p.reg = reg
}

// measure returns the classified latency of one probed line. A probe is
// destructive — reading a line's latency refills it — so a noisy timer
// cannot be beaten by re-probing. Instead, when TimerFault is armed, the
// single architectural latency is read TimerSamples times through the
// fault-injected timer and the median of the readings is returned
// (FilteredReading): with per-reading jitter probability q, a line is
// misread only when a majority of its readings jitter past the threshold
// (~C(k,⌈k/2⌉)·q^⌈k/2⌉), the repeated-measurement amplification of
// Schwarzl et al.'s remote timing attacks. With no timer fault this is
// exactly one clean probe.
func (p *PrimeProbe) measure(addr uint64) int {
	lat := p.c.Probe(p.actor, addr)
	val, noisy := FilteredReading(lat, p.TimerSamples, p.TimerFault)
	if noisy > 0 && p.reg != nil {
		if p.noisyReads == nil {
			p.noisyReads = p.reg.Counter("pp.noisy_reads")
		}
		p.noisyReads.Add(uint64(noisy))
	}
	return val
}

// NewPrimeProbe creates the attacker with a contiguous physical buffer of
// poolBytes at poolBase (its "own data" in the paper's step 1). Buffer
// lines are indexed lazily into per-set eviction candidates.
func NewPrimeProbe(c *cache.Cache, actor int, poolBase, poolBytes uint64) *PrimeProbe {
	lineSize := uint64(c.Config().LineSize)
	p := &PrimeProbe{
		c:         c,
		actor:     actor,
		poolBase:  poolBase,
		poolLines: int(poolBytes / lineSize),
		setLines:  map[int][]uint64{},
	}
	for i := 0; i < p.poolLines; i++ {
		addr := poolBase + uint64(i)*lineSize
		gs := c.GlobalSet(addr)
		p.setLines[gs] = append(p.setLines[gs], addr)
	}
	return p
}

// Calibrate measures hit and miss latencies over the attacker's own lines
// and fixes the threshold between them. Returns the threshold.
func (p *PrimeProbe) Calibrate(samples int) int {
	if samples <= 0 {
		samples = 64
	}
	addr := p.poolBase
	var hits, misses []int
	for i := 0; i < samples; i++ {
		p.c.Flush(addr)
		misses = append(misses, p.c.Probe(p.actor, addr))
		hits = append(hits, p.c.Probe(p.actor, addr))
	}
	sort.Ints(hits)
	sort.Ints(misses)
	// Midpoint between the hit distribution's high tail and the miss
	// distribution's low tail.
	hiHit := hits[len(hits)*9/10]
	loMiss := misses[len(misses)/10]
	p.threshold = (hiHit + loMiss) / 2
	return p.threshold
}

// Threshold returns the calibrated hit/miss boundary.
func (p *PrimeProbe) Threshold() int { return p.threshold }

// EvictionSet returns `ways` attacker line addresses mapping to the given
// global set.
func (p *PrimeProbe) EvictionSet(globalSet, ways int) ([]uint64, error) {
	lines := p.setLines[globalSet]
	if len(lines) < ways {
		p.evsetFail.Inc()
		return nil, fmt.Errorf("%w: set %d has %d/%d candidate lines",
			ErrNoEvictionSet, globalSet, len(lines), ways)
	}
	return lines[:ways], nil
}

// Prime loads the eviction set into the cache (attack step 1).
func (p *PrimeProbe) Prime(ev []uint64) {
	p.primes.Inc()
	for _, a := range ev {
		p.c.Access(p.actor, a)
	}
	// Second pass in reverse defeats self-eviction under LRU-like
	// policies, a standard prime refinement.
	for i := len(ev) - 1; i >= 0; i-- {
		p.c.Access(p.actor, ev[i])
	}
}

// Probe measures the eviction set and returns the number of lines whose
// latency exceeded the threshold (i.e. were evicted by the victim), along
// with each line's latency (attack step 3).
func (p *PrimeProbe) Probe(ev []uint64) (evicted int, lats []int) {
	if p.threshold == 0 {
		p.Calibrate(0)
	}
	p.probes.Inc()
	lats = make([]int, len(ev))
	for i, a := range ev {
		lats[i] = p.measure(a)
		p.probedLines.Inc()
		p.probeLat.Observe(int64(lats[i]))
		if lats[i] > p.threshold {
			evicted++
		}
	}
	p.evictionsObs.Add(uint64(evicted))
	return evicted, lats
}

// ProbeSets primes-then-probes each of the given global sets around a call
// to victim (typically one single-stepped victim access) and returns the
// set indices that saw evictions.
func (p *PrimeProbe) ProbeSets(sets []int, ways int, victim func()) ([]int, error) {
	evs := make([][]uint64, len(sets))
	for i, s := range sets {
		ev, err := p.EvictionSet(s, ways)
		if err != nil {
			return nil, err
		}
		evs[i] = ev
		p.Prime(ev)
	}
	victim()
	var hot []int
	for i, ev := range evs {
		if n, _ := p.Probe(ev); n > 0 {
			hot = append(hot, sets[i])
		}
	}
	return hot, nil
}

// FlushReload drives the flush/reload cycle against lines the attacker
// shares with the victim (a shared library's code pages, §VI).
type FlushReload struct {
	c         *cache.Cache
	actor     int
	threshold int

	flushes  *obs.Counter
	reloads  *obs.Counter
	hitsSeen *obs.Counter
}

// AttachObs registers Flush+Reload telemetry on reg: fr.flushes,
// fr.reloads, and fr.hits (reloads that saw the victim's access).
func (f *FlushReload) AttachObs(reg *obs.Registry) {
	f.flushes = reg.Counter("fr.flushes")
	f.reloads = reg.Counter("fr.reloads")
	f.hitsSeen = reg.Counter("fr.hits")
}

// NewFlushReload creates the attacker.
func NewFlushReload(c *cache.Cache, actor int) *FlushReload {
	return &FlushReload{c: c, actor: actor}
}

// Calibrate fixes the hit/miss threshold using a scratch address.
func (f *FlushReload) Calibrate(scratch uint64, samples int) int {
	if samples <= 0 {
		samples = 64
	}
	var hits, misses []int
	for i := 0; i < samples; i++ {
		f.c.Flush(scratch)
		misses = append(misses, f.c.Probe(f.actor, scratch))
		hits = append(hits, f.c.Probe(f.actor, scratch))
	}
	sort.Ints(hits)
	sort.Ints(misses)
	f.threshold = (hits[len(hits)*9/10] + misses[len(misses)/10]) / 2
	f.c.Flush(scratch)
	return f.threshold
}

// Threshold returns the calibrated boundary.
func (f *FlushReload) Threshold() int { return f.threshold }

// Flush evicts the monitored lines (step 1).
func (f *FlushReload) Flush(addrs ...uint64) {
	for _, a := range addrs {
		f.c.Flush(a)
		f.flushes.Inc()
	}
}

// Reload measures one line and reports whether the victim touched it
// since the last flush (a cache hit), then flushes it again for the next
// round — the standard Flush+Reload sampling loop body.
func (f *FlushReload) Reload(addr uint64) bool {
	if f.threshold == 0 {
		f.Calibrate(addr^0x3f000, 0)
	}
	lat := f.c.Probe(f.actor, addr)
	f.c.Flush(addr)
	f.reloads.Inc()
	if lat < f.threshold {
		f.hitsSeen.Inc()
		return true
	}
	return false
}

// Sample reloads every monitored address once, returning per-address hit
// flags for this sampling interval.
func (f *FlushReload) Sample(addrs []uint64) []bool {
	out := make([]bool, len(addrs))
	for i, a := range addrs {
		out[i] = f.Reload(a)
	}
	return out
}
