package attacker

import (
	"errors"
	"testing"

	"github.com/zipchannel/zipchannel/internal/cache"
)

func newCache() *cache.Cache {
	return cache.New(cache.Config{Sets: 64, Ways: 4, Slices: 2, Jitter: 3, Seed: 1})
}

const (
	victimActor   = 1
	attackerActor = 2
)

func TestCalibrateSeparatesHitsAndMisses(t *testing.T) {
	c := newCache()
	p := NewPrimeProbe(c, attackerActor, 1<<30, 1<<20)
	th := p.Calibrate(100)
	cfg := c.Config()
	if th <= cfg.HitLatency || th >= cfg.MissLatency {
		t.Errorf("threshold %d not between hit %d and miss %d", th, cfg.HitLatency, cfg.MissLatency)
	}
}

func TestEvictionSetMapsToTargetSet(t *testing.T) {
	c := newCache()
	p := NewPrimeProbe(c, attackerActor, 1<<30, 1<<22)
	target := c.GlobalSet(0x12345000)
	ev, err := p.EvictionSet(target, 4)
	if err != nil {
		t.Fatalf("EvictionSet: %v", err)
	}
	if len(ev) != 4 {
		t.Fatalf("got %d lines, want 4", len(ev))
	}
	for _, a := range ev {
		if c.GlobalSet(a) != target {
			t.Errorf("line %#x maps to set %d, want %d", a, c.GlobalSet(a), target)
		}
	}
}

func TestEvictionSetTooSmallPool(t *testing.T) {
	c := newCache()
	p := NewPrimeProbe(c, attackerActor, 1<<30, 128) // 2 lines only
	found := 0
	for gs := 0; gs < 128; gs++ {
		if _, err := p.EvictionSet(gs, 4); err == nil {
			found++
		} else if !errors.Is(err, ErrNoEvictionSet) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if found != 0 {
		t.Errorf("a 2-line pool built %d eviction sets of 4", found)
	}
}

func TestPrimeProbeDetectsVictimAccess(t *testing.T) {
	c := newCache()
	p := NewPrimeProbe(c, attackerActor, 1<<30, 1<<22)
	p.Calibrate(100)

	victimAddr := uint64(0x7f0000)
	target := c.GlobalSet(victimAddr)
	ev, err := p.EvictionSet(target, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Round 1: no victim access -> no evictions.
	p.Prime(ev)
	if n, _ := p.Probe(ev); n != 0 {
		t.Errorf("probe without victim reported %d evictions", n)
	}

	// Round 2: the victim touches its address -> exactly one eviction.
	p.Prime(ev)
	c.Access(victimActor, victimAddr)
	if n, _ := p.Probe(ev); n != 1 {
		t.Errorf("probe after victim access reported %d evictions, want 1", n)
	}
}

func TestProbeSetsPinpointsHotSet(t *testing.T) {
	c := newCache()
	p := NewPrimeProbe(c, attackerActor, 1<<30, 1<<22)
	p.Calibrate(100)

	victimAddr := uint64(0xabc000)
	target := c.GlobalSet(victimAddr)
	// Monitor a spread of sets including the target.
	sets := []int{target}
	for gs := 0; len(sets) < 8; gs += 13 {
		if gs != target {
			sets = append(sets, gs)
		}
	}
	hot, err := p.ProbeSets(sets, 4, func() {
		c.Access(victimActor, victimAddr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) != 1 || hot[0] != target {
		t.Errorf("hot sets = %v, want [%d]", hot, target)
	}
}

func TestPrimeProbeWithCATSingleWay(t *testing.T) {
	// The paper's configuration: CAT reduces the monitored region to a
	// single way, so a 1-line eviction set suffices.
	c := newCache()
	c.SetCoSMask(1, 0b0001)
	c.AssignActor(victimActor, 1)
	c.AssignActor(attackerActor, 1)
	p := NewPrimeProbe(c, attackerActor, 1<<30, 1<<22)
	p.Calibrate(100)

	victimAddr := uint64(0x555000)
	target := c.GlobalSet(victimAddr)
	ev, err := p.EvictionSet(target, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Prime(ev)
	c.Access(victimActor, victimAddr)
	if n, _ := p.Probe(ev); n != 1 {
		t.Errorf("single-way prime+probe missed the victim access (n=%d)", n)
	}
}

func TestFlushReloadDetectsSharedAccess(t *testing.T) {
	c := newCache()
	f := NewFlushReload(c, attackerActor)
	shared := uint64(0x40000) // shared library line
	f.Calibrate(0x99000, 100)

	f.Flush(shared)
	if f.Reload(shared) {
		t.Error("reload without victim should miss")
	}
	// Victim touches the shared line; the next reload must hit.
	c.Access(victimActor, shared)
	if !f.Reload(shared) {
		t.Error("reload after victim access should hit")
	}
	// Reload auto-flushes: with no further victim activity, miss again.
	if f.Reload(shared) {
		t.Error("second reload should miss (auto-flush)")
	}
}

func TestFlushReloadSample(t *testing.T) {
	c := newCache()
	f := NewFlushReload(c, attackerActor)
	f.Calibrate(0x99000, 100)
	addrs := []uint64{0x40000, 0x41000}
	f.Flush(addrs...)
	c.Access(victimActor, addrs[1])
	got := f.Sample(addrs)
	if got[0] || !got[1] {
		t.Errorf("sample = %v, want [false true]", got)
	}
}
