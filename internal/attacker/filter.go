// Median-of-samples timing filter, shared by the Prime+Probe timer
// (measure) and the pagestore compression-time oracle
// (internal/zipchannel). Both attacks face the same adversary — a noisy
// timer — and beat it the same way: the underlying quantity is
// deterministic, so it can be re-read k times through the jittered
// timer and classified by the median, the repeated-measurement
// amplification of Schwarzl et al.'s remote timing attacks.
package attacker

import (
	"sort"

	"github.com/zipchannel/zipchannel/internal/fault"
)

// SampleMedian returns the median of reads, sorting the slice in place.
// For even counts it returns the upper median (reads[k/2]) — the exact
// historical semantics of PrimeProbe.measure, which the pagestore
// oracle now shares. An empty slice returns 0.
func SampleMedian(reads []int) int {
	if len(reads) == 0 {
		return 0
	}
	sort.Ints(reads)
	return reads[len(reads)/2]
}

// FilteredReading reads one deterministic measurement `clean` k times
// through a possibly-jittered timer fault point and returns the
// median-filtered value plus how many readings were jittered. Each
// reading consumes exactly one Hit from the point's stream, in order,
// so replays are deterministic. k <= 0 uses DefaultTimerSamples.
//
// A nil point returns (clean, 0) without consuming anything, and so
// does a k-sample pass in which no reading jittered — both paths leave
// the caller byte-identical to a fault-free build.
func FilteredReading(clean, k int, point *fault.Point) (val, noisy int) {
	if point == nil {
		return clean, 0
	}
	if k <= 0 {
		k = DefaultTimerSamples
	}
	reads := make([]int, k)
	for i := range reads {
		reads[i] = clean
		if in := point.Hit(); in.Kind == fault.KindLatency {
			reads[i] += int(in.Jitter())
			noisy++
		}
	}
	if noisy == 0 {
		return clean, 0
	}
	return SampleMedian(reads), noisy
}
