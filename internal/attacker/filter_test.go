package attacker

import (
	"testing"

	"github.com/zipchannel/zipchannel/internal/fault"
)

func TestSampleMedianOdd(t *testing.T) {
	if got := SampleMedian([]int{5, 1, 9}); got != 5 {
		t.Fatalf("median of {5,1,9} = %d, want 5", got)
	}
	if got := SampleMedian([]int{7}); got != 7 {
		t.Fatalf("median of {7} = %d, want 7", got)
	}
}

// Even sample counts must return the UPPER median (reads[k/2]) — the
// exact semantics PrimeProbe.measure has always had; the shared helper
// must not silently change them to an average or lower median.
func TestSampleMedianEvenUsesUpperMedian(t *testing.T) {
	if got := SampleMedian([]int{1, 2, 3, 4}); got != 3 {
		t.Fatalf("median of {1,2,3,4} = %d, want 3 (upper median)", got)
	}
	if got := SampleMedian([]int{10, 20}); got != 20 {
		t.Fatalf("median of {10,20} = %d, want 20 (upper median)", got)
	}
}

func TestSampleMedianEmpty(t *testing.T) {
	if got := SampleMedian(nil); got != 0 {
		t.Fatalf("median of empty = %d, want 0", got)
	}
}

// A minority of jitter outliers — however large — must not move the
// median off the clean value.
func TestSampleMedianRejectsMinorityOutliers(t *testing.T) {
	reads := []int{100, 100, 100_000, 100, -50_000, 100, 100, 100, 99_999}
	if got := SampleMedian(reads); got != 100 {
		t.Fatalf("median with 3/9 outliers = %d, want 100", got)
	}
}

func TestFilteredReadingNilPointIsClean(t *testing.T) {
	val, noisy := FilteredReading(42, 9, nil)
	if val != 42 || noisy != 0 {
		t.Fatalf("nil point: got (%d, %d), want (42, 0)", val, noisy)
	}
}

func TestFilteredReadingDisarmedPointIsClean(t *testing.T) {
	reg := fault.NewRegistry(1)
	p := reg.Point("test.timer")
	val, noisy := FilteredReading(42, 9, p)
	if val != 42 || noisy != 0 {
		t.Fatalf("disarmed point: got (%d, %d), want (42, 0)", val, noisy)
	}
}

// With every reading jittered by a zero-centered bounded amount, the
// filtered value stays within the jitter bound of the clean value, and
// the noisy count equals the sample count.
func TestFilteredReadingAllNoisyStaysBounded(t *testing.T) {
	reg := fault.NewRegistry(7)
	reg.Arm("test.timer", fault.Spec{Kind: fault.KindLatency, Prob: 1, Param: 50})
	p := reg.Point("test.timer")
	const clean, k = 1000, 9
	val, noisy := FilteredReading(clean, k, p)
	if noisy != k {
		t.Fatalf("noisy = %d, want %d", noisy, k)
	}
	if val < clean-50 || val > clean+50 {
		t.Fatalf("filtered value %d outside [%d, %d]", val, clean-50, clean+50)
	}
}

// Minority jitter probability: the median filter should return the
// clean value on the overwhelming majority of measurements. Also checks
// k <= 0 falls back to DefaultTimerSamples and that replays are
// deterministic (same seed, same sequence of filtered values).
func TestFilteredReadingMedianRejectsJitter(t *testing.T) {
	run := func() (vals []int, exact int) {
		reg := fault.NewRegistry(99)
		reg.Arm("test.timer", fault.Spec{Kind: fault.KindLatency, Prob: 0.25, Param: 5000})
		p := reg.Point("test.timer")
		for i := 0; i < 200; i++ {
			v, _ := FilteredReading(777, 0, p)
			vals = append(vals, v)
			if v == 777 {
				exact++
			}
		}
		return vals, exact
	}
	vals1, exact := run()
	vals2, _ := run()
	if exact < 190 { // q=0.25, k=9: majority-jitter probability ~1%
		t.Fatalf("only %d/200 measurements survived jitter, want >= 190", exact)
	}
	for i := range vals1 {
		if vals1[i] != vals2[i] {
			t.Fatalf("replay diverged at %d: %d != %d", i, vals1[i], vals2[i])
		}
	}
}
