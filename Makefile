GO ?= go

.PHONY: all build vet test race bench smoke golden clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency contract of the telemetry layer.
race:
	$(GO) test -race ./internal/obs/...

# Full benchmark sweep: every paper table/figure plus substrate
# micro-benchmarks (see bench_test.go).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Quick cross-layer check: SGX attack telemetry end to end.
smoke:
	$(GO) test -run TestExperimentsSmoke ./internal/experiments/

# Regenerate golden files (obs snapshot, experiments example manifest).
golden:
	$(GO) test ./internal/obs/ -run TestSnapshotGolden -update
	$(GO) run ./cmd/experiments -run sgx -quick -json 2>/dev/null > cmd/experiments/testdata/sgx-quick.json

clean:
	$(GO) clean ./...
