GO ?= go

.PHONY: all build vet test race bench bench-json bench-compare bench-smoke smoke smoke-server golden clean test-fuzz test-parallel

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency contracts: the telemetry layer, the worker pool, the
# HTTP compression service, and the experiment scheduler (fake-runner +
# cheap real-runner tests).
race:
	$(GO) test -race ./internal/obs/... ./internal/par/... ./internal/server/...
	$(GO) test -race -run 'TestRunAll' ./internal/experiments/

# Short round-trip fuzz pass over every from-scratch compressor (the
# checked-in corpora under testdata/fuzz/ always run as part of `test`;
# this additionally explores for FUZZTIME per target).
FUZZTIME ?= 10s
test-fuzz:
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/lz77/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/lzw/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/bwt/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/huffcoding/

# The scheduler's determinism contract: the full quick suite must be
# byte-identical at parallelism 1 and 8 (manifests and merged snapshot),
# and 4 workers must not be slower than 1 (the anti-scaling guard).
test-parallel:
	$(GO) test -count=1 -run 'TestSchedulerDeterministic|TestRunAll' ./internal/experiments/

# Full benchmark sweep: every paper table/figure plus substrate
# micro-benchmarks (see bench_test.go).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Machine-readable perf record for this PR (the repo's performance
# trajectory; bump the filename each PR that re-measures).
BENCH_JSON ?= BENCH_PR4.json
bench-json:
	$(GO) test -bench . -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson -out $(BENCH_JSON)
	@echo wrote $(BENCH_JSON)

# Per-benchmark speedups between two perf records:
#   make bench-compare BASE=BENCH_PR3.json [BENCH_JSON=BENCH_PR4.json]
BASE ?= BENCH_PR3.json
bench-compare:
	$(GO) run ./cmd/benchcmp -base $(BASE) -new $(BENCH_JSON)

# One-iteration hot-path smoke (CI runs this so compile or gross perf
# regressions on the taint/LZ77 paths surface in PRs).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTaintAnalysis|BenchmarkLZ77Compress' -benchtime 1x .

# Quick cross-layer check: SGX attack telemetry end to end.
smoke:
	$(GO) test -run TestExperimentsSmoke ./internal/experiments/

# Server smoke: build zipserverd + zipload, boot the server on an
# ephemeral port, hammer it for 2s across all codecs with round-trip
# verification, and require zero errors (zipload exits non-zero on any).
smoke-server:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/zipserverd ./cmd/zipserverd; \
	$(GO) build -o $$tmp/zipload ./cmd/zipload; \
	$$tmp/zipserverd -addr 127.0.0.1:0 -addr-file $$tmp/addr & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "zipserverd never bound"; kill $$pid; exit 1; }; \
	status=0; \
	$$tmp/zipload -url http://$$(cat $$tmp/addr) -clients 8 -duration 2s || status=$$?; \
	kill -INT $$pid 2>/dev/null; wait $$pid 2>/dev/null || true; \
	exit $$status

# Regenerate golden files (obs snapshot, experiments example manifest).
golden:
	$(GO) test ./internal/obs/ -run TestSnapshotGolden -update
	$(GO) run ./cmd/experiments -run sgx -quick -json 2>/dev/null > cmd/experiments/testdata/sgx-quick.json

clean:
	$(GO) clean ./...
