GO ?= go

.PHONY: all build vet test race lint bench bench-json bench-compare bench-gate bench-cluster bench-smoke smoke smoke-server smoke-obs smoke-pages golden clean test-fuzz test-parallel test-chaos test-chaos-cluster test-differential

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet: staticcheck at a pinned version so CI runs
# are reproducible. `go run` fetches it on first use (needs module network
# access); override STATICCHECK to point at a local binary offline.
STATICCHECK ?= $(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1
lint: vet
	$(STATICCHECK) ./...

test:
	$(GO) test ./...

# The concurrency contracts: the telemetry layer, the worker pool, the
# HTTP compression service, and the experiment scheduler (fake-runner +
# cheap real-runner tests).
race:
	$(GO) test -race ./internal/obs/... ./internal/par/... ./internal/server/... ./internal/pagestore/...
	$(GO) test -race -run 'TestRunAll' ./internal/experiments/
	$(MAKE) test-differential

# The compiled engine's acceptance gate: every victim under both engines
# (interp vs threaded code + block taint transfer), bit-identical machine
# state, leakage reports, and taint histories — under the race detector,
# since the engine/decode/transfer caches are shared across VMs.
test-differential:
	$(GO) test -race -count=1 -run 'TestEngineDifferential' ./internal/core/

# Short round-trip fuzz pass over every from-scratch compressor (the
# checked-in corpora under testdata/fuzz/ always run as part of `test`;
# this additionally explores for FUZZTIME per target).
FUZZTIME ?= 10s
test-fuzz:
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/lz77/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/lzw/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/bwt/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/huffcoding/
	$(GO) test -run '^$$' -fuzz FuzzParseCacheControl -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run '^$$' -fuzz FuzzParseIfNoneMatch -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run '^$$' -fuzz FuzzPageRoundTrip -fuzztime $(FUZZTIME) ./internal/pagestore/
	$(GO) test -run '^$$' -fuzz FuzzVMDifferential -fuzztime $(FUZZTIME) ./internal/core/

# The scheduler's determinism contract: the full quick suite must be
# byte-identical at parallelism 1 and 8 (manifests and merged snapshot),
# and 4 workers must not be slower than 1 (the anti-scaling guard).
test-parallel:
	$(GO) test -count=1 -run 'TestSchedulerDeterministic|TestRunAll' ./internal/experiments/

# Full benchmark sweep: every paper table/figure plus substrate
# micro-benchmarks (see bench_test.go).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Machine-readable perf record for this PR (the repo's performance
# trajectory; bump the filename each PR that re-measures). The gated
# taint-path benchmarks are re-measured the way bench-gate measures them
# — GATE_BENCHTIME iterations, one process per benchmark, because a
# single-iteration number is too noisy to gate on and co-running them in
# one process inflates GC pacing — and benchjson keeps the later record
# per name.
BENCH_JSON ?= BENCH_PR9.json
bench-json:
	( $(GO) test -bench . -benchtime 1x -run '^$$' . ; \
	  $(GO) test -list '$(GATE_REGEX)' . | grep '^Benchmark' | while read b; do \
	    $(GO) test -bench "^$$b\$$" -benchtime $(GATE_BENCHTIME) -run '^$$' . ; \
	  done ) | $(GO) run ./cmd/benchjson -out $(BENCH_JSON)
	@echo wrote $(BENCH_JSON)

# Per-benchmark speedups between two perf records:
#   make bench-compare BASE=BENCH_PR3.json [BENCH_JSON=BENCH_PR4.json]
BASE ?= BENCH_PR4.json
bench-compare:
	$(GO) run ./cmd/benchcmp -base $(BASE) -new $(BENCH_JSON)

# CI perf regression gate: re-measure now and compare against the
# committed perf record; any gated taint-path benchmark more than
# GATE_MAX slower fails the build. The gate covers the headline
# TaintChannel paths — the end-to-end analyzer benchmark and the
# taint-side figure reproductions — and measures only those, at
# GATE_BENCHTIME iterations in one process per benchmark (the same
# protocol bench-json records them with; see that target's comment).
GATE_REGEX ?= TaintAnalysis|Fig[0-9]+.*Taint
GATE_MAX ?= 0.25
GATE_BENCHTIME ?= 100x
bench-gate:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) test -list '$(GATE_REGEX)' . | grep '^Benchmark' | while read b; do \
	  $(GO) test -bench "^$$b\$$" -benchtime $(GATE_BENCHTIME) -run '^$$' . ; \
	done | $(GO) run ./cmd/benchjson -out $$tmp/fresh.json; \
	$(GO) run ./cmd/benchcmp -base $(BENCH_JSON) -new $$tmp/fresh.json \
		-gate '$(GATE_REGEX)' -max-regress $(GATE_MAX)

# Cluster bench (DESIGN.md §10): two zipserverd instances with tiered
# hot/cold caches — the second mounting the first's cache as a peer tier
# over /internal/cache — driven by zipload's consistent-hash router with
# Zipf-skewed keys. Reports aggregate RPS, per-tier hit rates, and p99;
# then replays the identical seeded stream against a single plain-LRU
# instance and requires the XOR-of-SHA256 response digests to match
# byte-for-byte (topology may move bytes around, never change them).
CLUSTER_CLIENTS ?= 6
CLUSTER_REQS ?= 30
CLUSTER_SEED ?= 11
bench-cluster:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/zipserverd ./cmd/zipserverd; \
	$(GO) build -o $$tmp/zipload ./cmd/zipload; \
	$$tmp/zipserverd -addr 127.0.0.1:0 -addr-file $$tmp/addr1 \
		-cache-backend tiered -cache-mb 4 -cache-cold-mb 64 -cache-dir $$tmp/cold1 2>$$tmp/s1.log & \
	pid1=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr1 ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr1 ] || { echo "instance 1 never bound"; kill $$pid1; exit 1; }; \
	$$tmp/zipserverd -addr 127.0.0.1:0 -addr-file $$tmp/addr2 \
		-cache-backend tiered -cache-mb 4 -cache-cold-mb 64 -cache-dir $$tmp/cold2 \
		-cache-peer http://$$(cat $$tmp/addr1) 2>$$tmp/s2.log & \
	pid2=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr2 ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr2 ] || { echo "instance 2 never bound"; kill $$pid1 $$pid2; exit 1; }; \
	status=0; \
	$$tmp/zipload -urls http://$$(cat $$tmp/addr1),http://$$(cat $$tmp/addr2) \
		-clients $(CLUSTER_CLIENTS) -requests $(CLUSTER_REQS) -seed $(CLUSTER_SEED) \
		-zipf 1.2 -digest | tee $$tmp/cluster.txt || status=$$?; \
	kill -INT $$pid1 $$pid2 2>/dev/null; wait $$pid1 $$pid2 2>/dev/null || true; \
	[ $$status -eq 0 ] || exit $$status; \
	grep -q 'tier:' $$tmp/cluster.txt || { echo "no per-tier hit rates in the cluster report"; exit 1; }; \
	$$tmp/zipserverd -addr 127.0.0.1:0 -addr-file $$tmp/addr3 -cache-backend lru 2>$$tmp/s3.log & \
	pid3=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr3 ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr3 ] || { echo "baseline instance never bound"; kill $$pid3; exit 1; }; \
	$$tmp/zipload -url http://$$(cat $$tmp/addr3) \
		-clients $(CLUSTER_CLIENTS) -requests $(CLUSTER_REQS) -seed $(CLUSTER_SEED) \
		-zipf 1.2 -digest | tee $$tmp/single.txt || status=$$?; \
	kill -INT $$pid3 2>/dev/null; wait $$pid3 2>/dev/null || true; \
	[ $$status -eq 0 ] || exit $$status; \
	d1=$$(grep 'response digest' $$tmp/cluster.txt | awk '{print $$3}'); \
	d2=$$(grep 'response digest' $$tmp/single.txt | awk '{print $$3}'); \
	[ -n "$$d1" ] || { echo "cluster run produced no digest"; exit 1; }; \
	[ "$$d1" = "$$d2" ] || { echo "cluster digest $$d1 != single-LRU digest $$d2"; exit 1; }; \
	echo "bench-cluster: 2-instance tiered cluster byte-identical to single-LRU baseline ($$d1)"

# One-iteration hot-path smoke (CI runs this so compile or gross perf
# regressions on the taint/LZ77 paths surface in PRs).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTaintAnalysis|BenchmarkLZ77Compress' -benchtime 1x .

# Quick cross-layer check: SGX attack telemetry end to end.
smoke:
	$(GO) test -run TestExperimentsSmoke ./internal/experiments/

# Server smoke: build zipserverd + zipload, boot the server on an
# ephemeral port, hammer it for 2s across all codecs with round-trip
# verification, and require zero errors (zipload exits non-zero on any).
smoke-server:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/zipserverd ./cmd/zipserverd; \
	$(GO) build -o $$tmp/zipload ./cmd/zipload; \
	$$tmp/zipserverd -addr 127.0.0.1:0 -addr-file $$tmp/addr & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "zipserverd never bound"; kill $$pid; exit 1; }; \
	status=0; \
	$$tmp/zipload -url http://$$(cat $$tmp/addr) -clients 8 -duration 2s || status=$$?; \
	kill -INT $$pid 2>/dev/null; wait $$pid 2>/dev/null || true; \
	exit $$status

# smoke-obs: end-to-end observability check. Boots zipserverd with tracing,
# an access log, and a span sink; drives zipload; validates the Prometheus
# exposition with promcheck (the repo's own parser) including the series CI
# alerts on; and cross-checks zipstat -once -json against the run.
smoke-obs:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/zipserverd ./cmd/zipserverd; \
	$(GO) build -o $$tmp/zipload ./cmd/zipload; \
	$(GO) build -o $$tmp/zipstat ./cmd/zipstat; \
	$(GO) build -o $$tmp/promcheck ./cmd/promcheck; \
	$$tmp/zipserverd -addr 127.0.0.1:0 -addr-file $$tmp/addr \
		-access-log $$tmp/access.ndjson -trace-file $$tmp/spans.ndjson 2>$$tmp/server.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "zipserverd never bound"; kill $$pid; exit 1; }; \
	status=0; \
	addr=$$(cat $$tmp/addr); \
	$$tmp/zipload -url http://$$addr -clients 4 -duration 1s || status=$$?; \
	$$tmp/promcheck -url "http://$$addr/metrics?format=prom" \
		-require server_requests,server_request_latency_us_count,server_breaker_rejected,server_cache_hits \
		|| status=$$?; \
	$$tmp/zipstat -once -json http://$$addr || status=$$?; \
	[ -s $$tmp/spans.ndjson ] || { echo "no span records emitted"; status=1; }; \
	[ -s $$tmp/access.ndjson ] || { echo "no access-log records emitted"; status=1; }; \
	kill -INT $$pid 2>/dev/null; wait $$pid 2>/dev/null || true; \
	exit $$status

# smoke-pages: the remote compression-time oracle end to end (DESIGN.md
# §11). Boots zipserverd with the compressed page store mounted and a
# secret planted next to a 64-byte attacker region, then runs zippages
# over plain HTTP and requires it to recover the full secret from
# X-Page-Steps store costs alone.
smoke-pages:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/zipserverd ./cmd/zipserverd; \
	$(GO) build -o $$tmp/zippages ./cmd/zippages; \
	$$tmp/zipserverd -addr 127.0.0.1:0 -addr-file $$tmp/addr \
		-pagestore -pagestore-plant 'victim=64:key=HUNTER2SECRET000' 2>$$tmp/server.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "zipserverd never bound"; kill $$pid; exit 1; }; \
	status=0; \
	$$tmp/zippages -server http://$$(cat $$tmp/addr) -page victim \
		-prefix key= -len 16 | tee $$tmp/pages.txt || status=$$?; \
	kill -INT $$pid 2>/dev/null; wait $$pid 2>/dev/null || true; \
	[ $$status -eq 0 ] || exit $$status; \
	grep -q 'HUNTER2SECRET000' $$tmp/pages.txt || \
		{ echo "zippages did not recover the planted secret"; exit 1; }; \
	echo "smoke-pages: remote oracle recovered the planted secret over HTTP"

# Chaos suite (DESIGN.md §8). Three layers:
#   1. In-process chaos tests under -race: concurrent faulted server load
#      (zero round-trip corruption), breaker/deadline/disarmed-invisibility
#      contracts, retrying zipload clients, and the bzip2 ftab attack
#      recovering >99% of a 10 KB buffer under injected measurement noise.
#   2. End to end: zipserverd with ~10% injected faults (codec errors,
#      panics, output corruption, cache bit-flips, pool latency) hammered
#      by verifying zipload clients with backoff retries — zero unrecovered
#      errors, the process survives its own panics, SIGTERM exits within
#      the drain bound, and the final metrics snapshot proves faults fired.
#   3. Determinism: with faults disarmed, the full quick experiment suite
#      is byte-identical at -parallel 1, 2, and 4.
CHAOS_FAULTS = server.codec.compress=error:0.04,server.codec.compress=panic:0.02,server.codec.compress=corrupt:0.02,server.codec.decompress=error:0.05,server.codec.decompress=panic:0.02,server.cache.get=corrupt:0.03,server.gate.acquire=latency:0.05:300,server.cache.disk.write=error:0.05,server.cache.disk.read=error:0.05
test-chaos:
	ZIPCHAOS_FULL=1 $(GO) test -race -count=1 \
		-run 'TestChaos|TestDisarmedFaultsAreInvisible|TestRunLoadRetriesRecoverInjectedFaults|TestPageTrafficRecoversFromTransientCorruption' \
		./internal/server/ ./internal/zipchannel/ ./cmd/zipload/ ./internal/pagestore/
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -race -o $$tmp/zipserverd ./cmd/zipserverd; \
	$(GO) build -o $$tmp/zipload ./cmd/zipload; \
	$$tmp/zipserverd -addr 127.0.0.1:0 -addr-file $$tmp/addr \
		-cache-backend tiered -cache-mb 8 -cache-cold-mb 32 \
		-faults '$(CHAOS_FAULTS)' -fault-seed 7 -drain 5s -metrics $$tmp/metrics.json & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "zipserverd never bound"; kill $$pid; exit 1; }; \
	url=http://$$(cat $$tmp/addr); \
	$$tmp/zipload -url $$url -clients 8 -duration 3s -retries 6 -retry-base 2ms || \
		{ echo "chaos load saw unrecovered errors or corruption"; kill $$pid; exit 1; }; \
	$$tmp/zipload -url $$url -clients 1 -requests 1 -retries 6 >/dev/null || \
		{ echo "server dead after chaos load (a panic escaped?)"; kill $$pid; exit 1; }; \
	kill -TERM $$pid; \
	for i in $$(seq 1 80); do kill -0 $$pid 2>/dev/null || break; sleep 0.1; done; \
	if kill -0 $$pid 2>/dev/null; then echo "SIGTERM exit exceeded the drain bound"; kill -9 $$pid; exit 1; fi; \
	wait $$pid 2>/dev/null || true; \
	[ -s $$tmp/metrics.json ] || { echo "no final metrics snapshot after SIGTERM"; exit 1; }; \
	grep -q 'fault\.server\.' $$tmp/metrics.json || \
		{ echo "metrics snapshot shows no injected faults — chaos never fired"; exit 1; }; \
	echo "chaos e2e: server survived injected faults, drained on SIGTERM, wrote metrics"; \
	$(GO) build -o $$tmp/experiments ./cmd/experiments; \
	for p in 1 2 4; do $$tmp/experiments -quick -json -parallel $$p 2>/dev/null > $$tmp/par$$p.json; done; \
	cmp $$tmp/par1.json $$tmp/par2.json && cmp $$tmp/par1.json $$tmp/par4.json || \
		{ echo "disarmed runs diverge across parallelism"; exit 1; }; \
	echo "chaos determinism: quick suite byte-identical at -parallel 1, 2, 4"

# Cluster chaos (DESIGN.md §13): two tiered instances — B mounting A's
# cache as its peer tier — under a verifying zipload with failover,
# hedging, and Retry-After-aware retries. Instance A is SIGKILLed (no
# drain, no Close) mid-load and restarted on the same address with the
# same cache directory, so its startup scrub has to recover the torn
# disk tier. The run must end with zero round-trip errors (exit 0, or 3
# if the post-run probe still saw A down); B's peer probation breaker
# must have opened during the outage and be closed again after fresh
# traffic probes the revived peer.
test-chaos-cluster:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/zipserverd ./cmd/zipserverd; \
	$(GO) build -o $$tmp/zipload ./cmd/zipload; \
	$$tmp/zipserverd -addr 127.0.0.1:0 -addr-file $$tmp/addr1 \
		-cache-backend tiered -cache-mb 4 -cache-cold-mb 64 -cache-dir $$tmp/cold1 2>$$tmp/sA.log & \
	pid1=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr1 ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr1 ] || { echo "instance A never bound"; kill $$pid1; exit 1; }; \
	addrA=$$(cat $$tmp/addr1); \
	$$tmp/zipserverd -addr 127.0.0.1:0 -addr-file $$tmp/addr2 \
		-cache-backend tiered -cache-mb 4 -cache-cold-mb 64 -cache-dir $$tmp/cold2 \
		-cache-peer http://$$addrA 2>$$tmp/sB.log & \
	pid2=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr2 ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr2 ] || { echo "instance B never bound"; kill $$pid1 $$pid2; exit 1; }; \
	addrB=$$(cat $$tmp/addr2); \
	$$tmp/zipload -urls http://$$addrA,http://$$addrB \
		-clients 6 -duration 8s -seed 11 -zipf 1.2 \
		-retries 8 -retry-base 5ms -retry-max 300ms -hedge 100ms >$$tmp/load.txt 2>&1 & \
	lpid=$$!; \
	sleep 2; \
	kill -9 $$pid1 2>/dev/null; wait $$pid1 2>/dev/null || true; \
	echo "test-chaos-cluster: SIGKILLed instance A ($$addrA) mid-load"; \
	sleep 2; \
	rm -f $$tmp/addr1; \
	$$tmp/zipserverd -addr $$addrA -addr-file $$tmp/addr1 \
		-cache-backend tiered -cache-mb 4 -cache-cold-mb 64 -cache-dir $$tmp/cold1 2>$$tmp/sA2.log & \
	pid1=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr1 ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr1 ] || { echo "instance A never rebound after restart"; kill $$pid1 $$pid2; exit 1; }; \
	echo "test-chaos-cluster: restarted A on $$addrA (same cache dir; startup scrub recovers it)"; \
	lstatus=0; wait $$lpid || lstatus=$$?; \
	cat $$tmp/load.txt; \
	if [ $$lstatus -ne 0 ] && [ $$lstatus -ne 3 ]; then \
		echo "zipload exit $$lstatus — round-trip verification failed under chaos"; \
		kill $$pid1 $$pid2 2>/dev/null; exit 1; fi; \
	grep -q ', 0 errors in' $$tmp/load.txt || \
		{ echo "load report shows unrecovered errors"; kill $$pid1 $$pid2 2>/dev/null; exit 1; }; \
	curl -s http://$$addrB/metrics >$$tmp/bmetrics.json; \
	grep -Eq '"server\.cache\.peer\.probation\.opens": *[1-9]' $$tmp/bmetrics.json || \
		{ echo "B's peer probation never opened during the outage"; kill $$pid1 $$pid2 2>/dev/null; exit 1; }; \
	$$tmp/zipload -url http://$$addrB -clients 2 -requests 25 -seed 99 -retries 6 >/dev/null || \
		{ echo "post-restart probe load against B failed"; kill $$pid1 $$pid2 2>/dev/null; exit 1; }; \
	curl -s http://$$addrB/healthz >$$tmp/bhealth.json; \
	grep -q '"peer_state": "closed"' $$tmp/bhealth.json || \
		{ echo "B's peer probation did not recover to closed after A returned"; \
		  cat $$tmp/bhealth.json; kill $$pid1 $$pid2 2>/dev/null; exit 1; }; \
	kill -INT $$pid1 $$pid2 2>/dev/null; wait $$pid1 $$pid2 2>/dev/null || true; \
	echo "test-chaos-cluster: zero errors through a SIGKILL+restart; peer probation opened and recovered"

# Regenerate golden files (obs snapshot, experiments example manifest).
golden:
	$(GO) test ./internal/obs/ -run TestSnapshotGolden -update
	$(GO) run ./cmd/experiments -run sgx -quick -json 2>/dev/null > cmd/experiments/testdata/sgx-quick.json

clean:
	$(GO) clean ./...
