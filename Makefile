GO ?= go

.PHONY: all build vet test race bench smoke golden clean test-fuzz test-parallel

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency contracts: the telemetry layer, the worker pool, and
# the experiment scheduler (fake-runner + cheap real-runner tests).
race:
	$(GO) test -race ./internal/obs/... ./internal/par/...
	$(GO) test -race -run 'TestRunAll' ./internal/experiments/

# Short round-trip fuzz pass over every from-scratch compressor (the
# checked-in corpora under testdata/fuzz/ always run as part of `test`;
# this additionally explores for FUZZTIME per target).
FUZZTIME ?= 10s
test-fuzz:
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/lz77/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/lzw/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/bwt/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/huffcoding/

# The scheduler's determinism contract: the full quick suite must be
# byte-identical at parallelism 1 and 8 (manifests and merged snapshot).
test-parallel:
	$(GO) test -count=1 -run 'TestSchedulerDeterministic|TestRunAll' ./internal/experiments/

# Full benchmark sweep: every paper table/figure plus substrate
# micro-benchmarks (see bench_test.go).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Quick cross-layer check: SGX attack telemetry end to end.
smoke:
	$(GO) test -run TestExperimentsSmoke ./internal/experiments/

# Regenerate golden files (obs snapshot, experiments example manifest).
golden:
	$(GO) test ./internal/obs/ -run TestSnapshotGolden -update
	$(GO) run ./cmd/experiments -run sgx -quick -json 2>/dev/null > cmd/experiments/testdata/sgx-quick.json

clean:
	$(GO) clean ./...
