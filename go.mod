module github.com/zipchannel/zipchannel

go 1.22
