// Fingerprint example: record Flush+Reload traces of bzip2's
// mainSort/fallbackSort cache lines while it compresses five files of
// increasing diversity, train the classifier, and print the confusion
// matrix (paper §VI, Fig 8, at a small training budget).
package main

import (
	"fmt"
	"log"

	"github.com/zipchannel/zipchannel/internal/corpus"
	"github.com/zipchannel/zipchannel/internal/fingerprint"
	"github.com/zipchannel/zipchannel/internal/nn"
)

func main() {
	files := corpus.RepetitivenessSeries(11, 20000)

	fmt.Println("recording 20 Flush+Reload traces per file...")
	dataset, err := fingerprint.BuildDataset(files, fingerprint.DatasetConfig{
		TracesPerFile: 20,
		NoiseRate:     0.05,
		Seed:          13,
	})
	if err != nil {
		log.Fatal(err)
	}

	train, _, test := nn.Split(dataset, 0.8, 0.0, 14)
	model, err := nn.New(15, 2*fingerprint.PoolWidth, 64, len(files))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := model.Train(train, nn.TrainConfig{Epochs: 25, LR: 0.02}); err != nil {
		log.Fatal(err)
	}

	cm, err := model.ConfusionMatrix(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconfusion matrix (rows = file being compressed):")
	for i, row := range cm {
		fmt.Printf("  %s ", files[i].Name)
		for _, v := range row {
			fmt.Printf(" %.2f", v)
		}
		fmt.Println()
	}
	acc, _ := model.Accuracy(test)
	fmt.Printf("\ntest accuracy %.2f vs 0.20 chance — the attacker can tell\n", acc)
	fmt.Println("which file the victim compressed from two cache lines.")
}
