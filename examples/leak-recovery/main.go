// Leak-recovery example: for each of the three compression families, run
// the real from-scratch compressor over a secret, reduce the gadget's
// access stream to what a cache attacker sees (line granularity), and
// invert it back to plaintext with the paper's §IV computations — no
// cache simulator involved, just the algorithmic core of the attacks.
package main

import (
	"fmt"
	"log"

	"github.com/zipchannel/zipchannel/internal/compress/bwt"
	"github.com/zipchannel/zipchannel/internal/compress/lzw"
	"github.com/zipchannel/zipchannel/internal/recovery"
)

// lzwProbes collects the ncompress gadget's primary hash probes, masked
// to cache-line granularity.
type lzwProbes struct{ obs []uint64 }

func (p *lzwProbes) Probe(hp uint64, primary bool) {
	if primary {
		p.obs = append(p.obs, hp>>3)
	}
}

// ftabTrace collects bzip2's histogram indices as misaligned line offsets.
type ftabTrace struct {
	bwt.BaseTracer
	offs recovery.BzipTrace
}

func (f *ftabTrace) FtabInc(j uint16) {
	const base = 0x40014 // ftab base, 20 bytes past a line boundary
	lineStart := (uint64(base) + 4*uint64(j)) &^ 63
	f.offs = append(f.offs, int64(lineStart)-int64(base))
}

func main() {
	secret := []byte("the attacker reconstructs this entire sentence from cache lines")

	// --- LZ78 / ncompress: full recovery via dictionary replay (§IV-C).
	var probes lzwProbes
	if _, err := lzw.Compress(secret, &probes); err != nil {
		log.Fatal(err)
	}
	cands, err := recovery.RecoverLZW(probes.obs, 3, func(first byte) recovery.EntReplayer {
		return lzw.NewReplayer(first)
	})
	if err != nil {
		log.Fatal(err)
	}
	best, err := recovery.BestLZW(cands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lzw   recovered: %q\n", best.Plaintext)

	// --- BWT / bzip2: histogram inversion with off-by-one redundancy
	// (§IV-D); the trace comes from the real compressor's mainSort.
	var ft ftabTrace
	if _, err := bwt.Compress(secret, bwt.Options{Tracer: &ft, BlockSize: len(secret)}); err != nil {
		log.Fatal(err)
	}
	res, err := recovery.RecoverBzip(ft.offs, len(secret), 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bzip2 recovered: %q\n", res.Block)

	byteAcc, bitAcc := res.Accuracy(secret)
	fmt.Printf("\nbzip2 accuracy: %.0f%% of bytes, %.1f%% of bits\n", 100*byteAcc, 100*bitAcc)
	fmt.Println("(zlib's partial recovery is shown by `experiments -run survey`)")
}
