// SGX attack example: a victim enclave compresses a secret message with
// the bzip2 histogram gadget; the attacker single-steps it with page
// faults, Prime+Probes the frequency table, and reconstructs the message
// (paper §V).
package main

import (
	"fmt"
	"log"

	"github.com/zipchannel/zipchannel/internal/zipchannel"
)

func main() {
	secret := []byte("Meet me behind the old clock tower at midnight. " +
		"Bring the documents and tell absolutely no one about this plan.")

	cfg := zipchannel.DefaultConfig() // CAT + frame selection, §V-C
	result, err := zipchannel.Attack(secret, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("the enclave compressed a secret; the attacker saw only")
	fmt.Println("page faults and cache timings, and recovered:")
	fmt.Printf("\n  %q\n\n", result.Recovered)
	fmt.Printf("accuracy: %.1f%% of bytes, %.2f%% of bits (%d page remaps used)\n",
		100*result.ByteAcc, 100*result.BitAcc, result.Remaps)
}
