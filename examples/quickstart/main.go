// Quickstart: run TaintChannel on the zlib INSERT_STRING gadget and print
// the leakage report (the paper's Fig 2 in ~30 lines).
package main

import (
	"fmt"
	"log"

	"github.com/zipchannel/zipchannel/internal/core"
	"github.com/zipchannel/zipchannel/internal/victims"
	"github.com/zipchannel/zipchannel/internal/vm"
)

func main() {
	// The victim: the hash-head insertion loop every DEFLATE compressor
	// runs over its input (paper Listing 1), in the repo's assembly.
	prog := victims.ZlibInsertString()

	// A machine to run it, with the secret as its input stream.
	machine, err := vm.NewFlat(prog)
	if err != nil {
		log.Fatal(err)
	}
	machine.SetInput([]byte("this text is about to leak through the cache"))

	// Attach TaintChannel and run: every byte the victim reads is tagged,
	// and any memory access whose address carries taint is reported.
	analyzer := core.New(core.Config{MaxSamplesPerGadget: 2})
	analyzer.Attach(machine)
	if err := machine.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Print(analyzer.Report(prog.Name))
}
