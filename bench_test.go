// Package bench holds the benchmark harness that regenerates every table
// and figure of the paper (one Benchmark per experiment, DESIGN.md §4)
// plus throughput micro-benchmarks for the substrates. Accuracy headline
// numbers are attached to the benchmark output via ReportMetric.
package bench

import (
	"context"
	"math/rand"
	"testing"

	"github.com/zipchannel/zipchannel/internal/cache"
	"github.com/zipchannel/zipchannel/internal/compress/bwt"
	"github.com/zipchannel/zipchannel/internal/compress/lz77"
	"github.com/zipchannel/zipchannel/internal/compress/lzw"
	"github.com/zipchannel/zipchannel/internal/core"
	"github.com/zipchannel/zipchannel/internal/experiments"
	"github.com/zipchannel/zipchannel/internal/victims"
	"github.com/zipchannel/zipchannel/internal/vm"
	"github.com/zipchannel/zipchannel/internal/zipchannel"
)

// benchExperiment runs a registered experiment's quick variant b.N times
// and reports its headline metrics.
func benchExperiment(b *testing.B, name string, metricKeys ...string) {
	b.Helper()
	r, ok := experiments.Lookup(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	var last map[string]float64
	for i := 0; i < b.N; i++ {
		res, err := r.Run(&experiments.Ctx{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		last = res.Metrics
	}
	for _, k := range metricKeys {
		b.ReportMetric(last[k], k)
	}
}

// --- One benchmark per paper artifact ---

// BenchmarkFig2ZlibTaint regenerates Fig 2 (E1).
func BenchmarkFig2ZlibTaint(b *testing.B) { benchExperiment(b, "fig2", "gadgets") }

// BenchmarkFig3LZWTaint regenerates Fig 3 (E2).
func BenchmarkFig3LZWTaint(b *testing.B) { benchExperiment(b, "fig3", "gadgets") }

// BenchmarkFig4BzipTaint regenerates Fig 4 (E3).
func BenchmarkFig4BzipTaint(b *testing.B) { benchExperiment(b, "fig4", "gadgets") }

// BenchmarkAESValidation regenerates the §III-B AES check (E5).
func BenchmarkAESValidation(b *testing.B) { benchExperiment(b, "aes", "lookups") }

// BenchmarkMemcpyValidation regenerates the §III-B memcpy check (E6).
func BenchmarkMemcpyValidation(b *testing.B) { benchExperiment(b, "memcpy", "divergingPCs") }

// BenchmarkSurveyRecovery regenerates the §IV survey summary (E4).
func BenchmarkSurveyRecovery(b *testing.B) {
	benchExperiment(b, "survey", "zlibRawBits", "lzwBytes", "bzipBits")
}

// BenchmarkE7SGXAttack regenerates the §V-E headline (E7).
func BenchmarkE7SGXAttack(b *testing.B) { benchExperiment(b, "sgx", "bitAcc") }

// BenchmarkE7Ablations regenerates the CAT/frame-selection ablations (E7a).
func BenchmarkE7Ablations(b *testing.B) {
	benchExperiment(b, "sgx-ablate", "fullBitAcc", "bareBitAcc")
}

// BenchmarkMitigation regenerates the §VIII mitigation evaluation (E11).
func BenchmarkMitigation(b *testing.B) {
	benchExperiment(b, "mitigation", "vulnBitAcc", "mitBitAcc", "overheadX")
}

// BenchmarkFig6ControlFlow regenerates the sorting-path census (E10).
func BenchmarkFig6ControlFlow(b *testing.B) { benchExperiment(b, "fig6", "fallbacks") }

// BenchmarkFig7Fingerprint regenerates the 21-file confusion matrix (E8).
func BenchmarkFig7Fingerprint(b *testing.B) { benchExperiment(b, "fig7", "testAcc", "diagMean") }

// BenchmarkFig8Lipsum regenerates the repetitiveness matrix (E9).
func BenchmarkFig8Lipsum(b *testing.B) { benchExperiment(b, "fig8", "testAcc", "file1Diag") }

// BenchmarkPageStoreAttack regenerates the compressed-page-store oracle
// (E12): recovery accuracy clean and under timer jitter, oracle queries
// per recovered byte, and page-store throughput (pages/sec is wall
// clock, the rest are deterministic).
func BenchmarkPageStoreAttack(b *testing.B) {
	r, ok := experiments.Lookup("pagestore")
	if !ok {
		b.Fatal("pagestore experiment not registered")
	}
	var last map[string]float64
	for i := 0; i < b.N; i++ {
		res, err := r.Run(&experiments.Ctx{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		last = res.Metrics
	}
	for _, k := range []string{"byteAcc", "jitterAcc", "queriesPerByte", "fpAcc"} {
		b.ReportMetric(last[k], k)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(last["pageStores"]*float64(b.N)/secs, "pages/sec")
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkCacheAccess measures the simulated LLC's access throughput.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Config{})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Int63n(1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(1, addrs[i%len(addrs)])
	}
}

// BenchmarkVMExecution measures raw interpreter throughput (instructions
// per op) on the bzip2 gadget.
func BenchmarkVMExecution(b *testing.B) {
	input := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(input)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine, err := vm.NewFlat(victims.BzipFtab(victims.BzipFtabOptions{}))
		if err != nil {
			b.Fatal(err)
		}
		machine.SetInput(input)
		if err := machine.Run(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(input)))
	}
}

// BenchmarkTaintAnalysis measures TaintChannel's instrumented execution
// (the paper's tool overhead) on the same gadget.
func BenchmarkTaintAnalysis(b *testing.B) {
	input := make([]byte, 2048)
	rand.New(rand.NewSource(3)).Read(input)
	prog := victims.BzipFtab(victims.BzipFtabOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine, err := vm.NewFlat(prog)
		if err != nil {
			b.Fatal(err)
		}
		machine.SetInput(input)
		a := core.New(core.Config{MaxSamplesPerGadget: 1})
		a.Attach(machine)
		if err := machine.Run(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(input)))
	}
}

// Compressor throughput on mixed text.
func benchCodec(b *testing.B, compress func([]byte) ([]byte, error)) {
	b.Helper()
	rng := rand.New(rand.NewSource(4))
	src := make([]byte, 64*1024)
	for i := 0; i < len(src); {
		if rng.Intn(2) == 0 {
			n := min(rng.Intn(200)+1, len(src)-i)
			c := byte('a' + rng.Intn(26))
			for j := 0; j < n; j++ {
				src[i+j] = c
			}
			i += n
		} else {
			src[i] = byte(rng.Intn(256))
			i++
		}
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compress(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLZ77Compress measures the DEFLATE-style codec.
func BenchmarkLZ77Compress(b *testing.B) {
	benchCodec(b, func(src []byte) ([]byte, error) {
		return lz77.Compress(src, lz77.Options{Lazy: true})
	})
}

// BenchmarkLZWCompress measures the ncompress-style codec.
func BenchmarkLZWCompress(b *testing.B) {
	benchCodec(b, func(src []byte) ([]byte, error) {
		return lzw.Compress(src, nil)
	})
}

// BenchmarkBWTCompress measures the bzip2-style codec.
func BenchmarkBWTCompress(b *testing.B) {
	benchCodec(b, func(src []byte) ([]byte, error) {
		return bwt.Compress(src, bwt.Options{})
	})
}

// BenchmarkSGXAttackPerByte measures leaked secret bytes per second of
// simulation (the analogue of the paper's "10 KB in under 30 s").
func BenchmarkSGXAttackPerByte(b *testing.B) {
	input := make([]byte, 512)
	rand.New(rand.NewSource(5)).Read(input)
	cfg := zipchannel.DefaultConfig()
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		res, err := zipchannel.Attack(input, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.BitAcc < 0.9 {
			b.Fatalf("attack degraded: %.3f", res.BitAcc)
		}
	}
}

// BenchmarkToolComparison regenerates the §VII tool contrast (E12).
func BenchmarkToolComparison(b *testing.B) {
	benchExperiment(b, "tools", "agreement")
}

// BenchmarkAllGadgetsSGX regenerates E13: the §V attack applied to all
// three surveyed gadgets.
func BenchmarkAllGadgetsSGX(b *testing.B) {
	benchExperiment(b, "sgx-all-gadgets", "bzipBitAcc", "lzwByteAcc", "zlibCharsetBitAcc")
}

// benchRunAll runs the full quick suite through the parallel scheduler
// at a fixed worker count, so `go test -bench 'BenchmarkRunAllQuick'`
// compares sequential against parallel wall time directly. On a
// single-CPU host the two are expected to tie (the suite is CPU-bound);
// the spread between them is the scheduler's win on multicore.
func benchRunAll(b *testing.B, parallelism int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(context.Background(), experiments.RunOptions{
			Quick:       true,
			Parallelism: parallelism,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllQuickParallel1 is the sequential baseline.
func BenchmarkRunAllQuickParallel1(b *testing.B) { benchRunAll(b, 1) }

// BenchmarkRunAllQuickParallel4 fans experiments and their inner trials
// across 4 workers.
func BenchmarkRunAllQuickParallel4(b *testing.B) { benchRunAll(b, 4) }
