// Command zipserverd serves the repository's three from-scratch codecs over
// HTTP (internal/server): POST /v1/{lz77|lzw|bwt}/{compress|decompress} with
// a content-addressed LRU response cache, a bounded codec worker pool, and
// live telemetry at GET /metrics (canonical obs snapshot by default,
// Prometheus text exposition with ?format=prom). Request tracing is on by
// default: every /v1 request gets a span tree continuing any incoming
// traceparent header, and the response echoes the request's traceparent.
// SIGINT/SIGTERM trigger graceful shutdown: in-flight requests drain up to
// the -drain deadline, after which remaining connections are cut; the final
// metrics snapshot is written either way.
//
// Usage:
//
//	zipserverd -addr 127.0.0.1:8321 -workers 8 -cache-mb 64
//	curl -s --data-binary @file http://127.0.0.1:8321/v1/bwt/compress -o file.bz
//	curl -s http://127.0.0.1:8321/metrics
//	curl -s 'http://127.0.0.1:8321/metrics?format=prom'
//
// Observability extras:
//
//	zipserverd -access-log access.ndjson -trace-file spans.ndjson -pprof
//
// For scripting (the Makefile smoke target), -addr supports port 0 and
// -addr-file writes the actually-bound address once listening.
//
// Chaos runs (make test-chaos) arm deterministic fault injection:
//
//	zipserverd -faults 'server.codec.compress=error:0.05,server.cache.get=corrupt:0.05' -fault-seed 7
//
// The compressed page store (internal/pagestore) mounts on PUT/GET
// /v1/pages/{id} with -pagestore; -pagestore-plant co-locates a secret
// with an attacker-writable region in one page, the target cmd/zippages
// recovers remotely from X-Page-Steps alone:
//
//	zipserverd -pagestore -page-size 4096 -pool-mb 1 -pagestore-plant 'victim=64:key=HUNTER2SECRET000'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/pagestore"
	"github.com/zipchannel/zipchannel/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zipserverd:", err)
		os.Exit(1)
	}
}

// cacheConfig collects the -cache-* flags that shape the backend
// hierarchy.
type cacheConfig struct {
	Backend     string
	HotBytes    int64 // in-memory budget (also the plain lru/sharded budget)
	ColdBytes   int64 // disk budget
	Shards      int
	Dir         string
	Peer        string
	PeerTimeout time.Duration
}

// buildCache composes the configured backend hierarchy (DESIGN.md §10).
// It returns the full lookup chain, the local view served to peers on
// /internal/cache (never includes the peer tier, so two instances peered
// at each other terminate), and a cleanup for any temp dir it created.
//
// Metric prefixes: a single-backend setup keeps the classic server.cache
// series; a hierarchy puts the aggregate there and per-tier series under
// server.cache.{hot,cold,local,peer}.
func buildCache(cc cacheConfig, reg *obs.Registry, freg *fault.Registry) (cache, peerView server.CacheBackend, cleanup func(), err error) {
	cleanup = func() {}
	if cc.HotBytes <= 0 && cc.Backend != "disk" {
		return nil, nil, cleanup, nil // caching disabled; "lru" default also lands here when budget <= 0
	}
	// A disk tier needs a directory; default to a disposable temp dir.
	ensureDir := func() (string, error) {
		if cc.Dir != "" {
			return cc.Dir, nil
		}
		dir, err := os.MkdirTemp("", "zipserverd-cache-*")
		if err != nil {
			return "", err
		}
		cleanup = func() { os.RemoveAll(dir) }
		return dir, nil
	}
	// localPrefix is where the innermost composition hangs its aggregate
	// counters: the classic name when it IS the whole cache, a sub-name
	// when a peer tier wraps it.
	localPrefix := "server.cache"
	if cc.Peer != "" {
		localPrefix = "server.cache.local"
	}

	var local server.CacheBackend
	switch cc.Backend {
	case "lru":
		if lru := server.NewLRUBackend(cc.HotBytes, reg, localPrefix); lru != nil {
			local = lru
		}
	case "sharded":
		if sh := server.NewShardedBackend(cc.HotBytes, cc.Shards, reg, localPrefix); sh != nil {
			local = sh
		}
	case "disk":
		dir, derr := ensureDir()
		if derr != nil {
			return nil, nil, cleanup, derr
		}
		budget := cc.ColdBytes
		if budget <= 0 {
			budget = cc.HotBytes
		}
		d, derr := server.NewDiskBackend(dir, budget, reg, localPrefix, freg)
		if derr != nil {
			return nil, nil, cleanup, derr
		}
		if d != nil {
			local = d
		}
	case "tiered":
		dir, derr := ensureDir()
		if derr != nil {
			return nil, nil, cleanup, derr
		}
		hot := server.NewLRUBackend(cc.HotBytes, reg, "server.cache.hot")
		cold, derr := server.NewDiskBackend(dir, cc.ColdBytes, reg, "server.cache.cold", freg)
		if derr != nil {
			return nil, nil, cleanup, derr
		}
		var hotB, coldB server.CacheBackend
		if hot != nil {
			hotB = hot
		}
		if cold != nil {
			coldB = cold
		}
		if t := server.NewTiered(hotB, coldB, reg, localPrefix); t != nil {
			local = t
		}
	default:
		return nil, nil, cleanup, fmt.Errorf("unknown -cache-backend %q (have lru, sharded, disk, tiered)", cc.Backend)
	}

	if cc.Peer == "" || local == nil {
		return local, local, cleanup, nil
	}
	peer := server.NewPeerBackend(cc.Peer, cc.PeerTimeout, reg, "server.cache.peer", freg)
	full := server.NewTiered(local, peer, reg, "server.cache")
	return full, local, cleanup, nil
}

// runScrub is the -cache-scrub mode: one offline pass over a disk-cache
// directory (the same scrub every startup runs), reported to stdout. The
// pass is idempotent and safe on a live directory only if no zipserverd
// is writing to it — run it before boot, not beside one.
func runScrub(dir string) error {
	rep, err := server.ScrubDir(dir)
	if err != nil {
		return err
	}
	fmt.Printf("cache scrub: %s\n", rep.Dir)
	fmt.Printf("  intact entries:     %d (%d value bytes)\n", rep.Recovered, rep.RecoveredBytes)
	fmt.Printf("  quarantined:        %d\n", len(rep.Quarantined))
	for _, name := range rep.Quarantined {
		fmt.Printf("    %s -> %s/\n", name, server.QuarantineDir)
	}
	fmt.Printf("  temp files removed: %d\n", rep.TempsRemoved)
	return nil
}

// parsePlant decodes -pagestore-plant's "id=attackerLen:secret" form.
// The secret may itself contain '=' and ':' — only the first '=' and the
// first ':' after it delimit.
func parsePlant(s string) (id string, attackerLen int, secret []byte, err error) {
	eq := strings.Index(s, "=")
	if eq <= 0 {
		return "", 0, nil, fmt.Errorf("-pagestore-plant %q: want id=attackerLen:secret", s)
	}
	id = s[:eq]
	rest := s[eq+1:]
	colon := strings.Index(rest, ":")
	if colon <= 0 {
		return "", 0, nil, fmt.Errorf("-pagestore-plant %q: want id=attackerLen:secret", s)
	}
	attackerLen, err = strconv.Atoi(rest[:colon])
	if err != nil {
		return "", 0, nil, fmt.Errorf("-pagestore-plant %q: bad attacker region size: %w", s, err)
	}
	return id, attackerLen, []byte(rest[colon+1:]), nil
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8321", "listen address (port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening")
		workers  = flag.Int("workers", 0, "max concurrent codec executions (0 = GOMAXPROCS)")
		queueLim = flag.Int("queue-limit", 0, "max codec requests waiting beyond -workers before shedding 503+Retry-After (0 = 8x workers, negative disables shedding)")
		maxBody  = flag.Int64("max-body", server.DefaultMaxBodyBytes, "per-request body cap in bytes")
		cacheMB  = flag.Int64("cache-mb", 64, "response cache budget in MiB (negative disables; the hot tier for -cache-backend tiered)")

		cacheBackend = flag.String("cache-backend", "lru", "cache backend: lru, sharded, disk, or tiered (in-memory hot over disk cold)")
		cacheShards  = flag.Int("cache-shards", 16, "shard count for -cache-backend sharded")
		cacheDir     = flag.String("cache-dir", "", "directory for the disk tier (empty = private temp dir, removed on exit)")
		cacheColdMB  = flag.Int64("cache-cold-mb", 256, "disk (cold) tier budget in MiB for -cache-backend disk/tiered")
		cachePeer    = flag.String("cache-peer", "", "base URL of a peer zipserverd whose cache becomes this instance's outermost cold tier")
		peerTimeout  = flag.Duration("cache-peer-timeout", server.DefaultPeerTimeout, "per-exchange deadline for the peer tier")
		cacheMaxAge  = flag.Int("cache-max-age", 0, "max-age seconds advertised in Cache-Control on /v1 responses (0 = default, negative disables)")
		cacheScrub   = flag.Bool("cache-scrub", false, "scrub -cache-dir (verify entries, quarantine torn ones, remove temps), print the report, and exit")
		metrics  = flag.String("metrics", "", "write a final obs snapshot to this file on shutdown")
		faults   = flag.String("faults", "", "deterministic fault injections, comma-separated point=kind:prob[:param] or point=kind@n[:param] (empty disables)")
		fseed    = flag.Int64("fault-seed", 1, "root seed for the fault registry's per-point streams")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline before in-flight connections are cut")

		pagestoreOn = flag.Bool("pagestore", false, "mount the compressed page store on PUT/GET /v1/pages/{id}")
		pageSize    = flag.Int("page-size", pagestore.DefaultPageSize, "page size in bytes for -pagestore")
		poolMB      = flag.Int64("pool-mb", 1, "compressed page pool budget in MiB for -pagestore (LRU writeback past it)")
		pageCodec   = flag.String("page-codec", pagestore.DefaultCodec, "registry codec pages compress with")
		pagePlant   = flag.String("pagestore-plant", "", "plant a co-located page: id=attackerLen:secret (e.g. 'victim=64:key=HUNTER2') — the attack target cmd/zippages recovers")

		trace     = flag.Bool("trace", true, "per-request span trees + traceparent propagation (false disables tracing entirely)")
		traceSeed = flag.Int64("trace-seed", 1, "seed for trace/span ID generation (reproducible ID sequences under sequential load)")
		traceFile = flag.String("trace-file", "", "append span NDJSON records to this file (- for stderr; empty = spans counted but not logged)")
		accessLog = flag.String("access-log", "", "append one NDJSON access record per /v1 request to this file (- for stderr)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in profiling surface)")
		slo       = flag.Duration("slo", 0, "per-request latency objective for server.slo.* counters (0 = default 500ms, negative disables latency breaches)")
	)
	flag.Parse()

	if *cacheScrub {
		if *cacheDir == "" {
			return fmt.Errorf("-cache-scrub requires -cache-dir")
		}
		return runScrub(*cacheDir)
	}

	var freg *fault.Registry
	if *faults != "" {
		freg = fault.NewRegistry(*fseed)
		if err := freg.ArmAll(*faults); err != nil {
			return err
		}
	}
	cacheBytes := *cacheMB
	if cacheBytes > 0 {
		cacheBytes <<= 20
	}
	coldBytes := *cacheColdMB
	if coldBytes > 0 {
		coldBytes <<= 20
	}

	// openSink maps a flag value to a writer: "-" is stderr (stdout stays
	// clean for scripted output), anything else appends to the named file.
	var sinks []*os.File
	defer func() {
		for _, f := range sinks {
			f.Close()
		}
	}()
	openSink := func(path string) (io.Writer, error) {
		if path == "-" {
			return os.Stderr, nil
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		sinks = append(sinks, f)
		return f, nil
	}

	reg := obs.NewRegistry()
	if *traceFile != "" {
		w, err := openSink(*traceFile)
		if err != nil {
			return err
		}
		reg.SetTraceSink(obs.NewTraceSink(w))
	}
	var tracer *obs.Tracer
	if *trace {
		tracer = obs.NewTracer(reg, *traceSeed)
	}
	var accessW io.Writer
	if *accessLog != "" {
		w, err := openSink(*accessLog)
		if err != nil {
			return err
		}
		accessW = w
	}

	cache, peerView, cleanup, err := buildCache(cacheConfig{
		Backend:     *cacheBackend,
		HotBytes:    cacheBytes,
		ColdBytes:   coldBytes,
		Shards:      *cacheShards,
		Dir:         *cacheDir,
		Peer:        *cachePeer,
		PeerTimeout: *peerTimeout,
	}, reg, freg)
	if err != nil {
		return err
	}
	defer cleanup()

	var pages *pagestore.Store
	if *pagestoreOn {
		pages = pagestore.New(pagestore.Config{
			PageSize:  *pageSize,
			PoolBytes: *poolMB << 20,
			Codec:     *pageCodec,
			Obs:       reg,
			Faults:    freg,
		})
		if *pagePlant != "" {
			id, attackerLen, secret, perr := parsePlant(*pagePlant)
			if perr != nil {
				return perr
			}
			if _, perr := pages.Plant(id, attackerLen, secret); perr != nil {
				return perr
			}
			fmt.Fprintf(os.Stderr, "zipserverd: planted page %q (attacker region %d, %d secret bytes co-located)\n",
				id, attackerLen, len(secret))
		}
	} else if *pagePlant != "" {
		return fmt.Errorf("-pagestore-plant requires -pagestore")
	}

	srv := server.New(server.Config{
		MaxBodyBytes: *maxBody,
		CacheBytes:   cacheBytes,
		Cache:        cache,
		PeerView:     peerView,
		CacheMaxAge:  *cacheMaxAge,
		Workers:      *workers,
		QueueLimit:   *queueLim,
		Registry:     reg,
		Faults:       freg,
		Tracer:       tracer,
		AccessLog:    accessW,
		EnablePprof:  *pprofOn,
		SLOLatency:   *slo,
		PageStore:    pages,
	})
	if freg != nil {
		fmt.Fprintf(os.Stderr, "zipserverd: chaos armed (seed %d): %s\n", *fseed, strings.Join(freg.Armed(), " "))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "zipserverd: listening on %s (workers=%d)\n", bound, srv.Workers())

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // Serve never returns nil before Shutdown
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "zipserverd: shutting down (drain %s)\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// The drain deadline expired with requests still in flight: cut
		// them rather than hang forever. Exit stays clean — a bounded
		// drain is the contract, not a zero-loss one.
		fmt.Fprintf(os.Stderr, "zipserverd: drain deadline exceeded, forcing close: %v\n", err)
		httpSrv.Close()
	}
	<-errc // reap the Serve goroutine (returns http.ErrServerClosed)
	// The final snapshot is written even after a forced close — a chaos
	// run's post-mortem needs the counters most when shutdown was ugly.
	if *metrics != "" {
		if err := srv.Registry().WriteSnapshot(*metrics); err != nil {
			return err
		}
	}
	return nil
}
