// Command zipserverd serves the repository's three from-scratch codecs over
// HTTP (internal/server): POST /v1/{lz77|lzw|bwt}/{compress|decompress} with
// a content-addressed LRU response cache, a bounded codec worker pool, and
// live telemetry at GET /metrics (canonical obs snapshot). SIGINT/SIGTERM
// trigger graceful shutdown: in-flight requests drain before exit.
//
// Usage:
//
//	zipserverd -addr 127.0.0.1:8321 -workers 8 -cache-mb 64
//	curl -s --data-binary @file http://127.0.0.1:8321/v1/bwt/compress -o file.bz
//	curl -s http://127.0.0.1:8321/metrics
//
// For scripting (the Makefile smoke target), -addr supports port 0 and
// -addr-file writes the actually-bound address once listening.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/zipchannel/zipchannel/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zipserverd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8321", "listen address (port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening")
		workers  = flag.Int("workers", 0, "max concurrent codec executions (0 = GOMAXPROCS)")
		maxBody  = flag.Int64("max-body", server.DefaultMaxBodyBytes, "per-request body cap in bytes")
		cacheMB  = flag.Int64("cache-mb", 64, "response cache budget in MiB (negative disables)")
		metrics  = flag.String("metrics", "", "write a final obs snapshot to this file on shutdown")
	)
	flag.Parse()

	cacheBytes := *cacheMB
	if cacheBytes > 0 {
		cacheBytes <<= 20
	}
	srv := server.New(server.Config{
		MaxBodyBytes: *maxBody,
		CacheBytes:   cacheBytes,
		Workers:      *workers,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "zipserverd: listening on %s (workers=%d)\n", bound, srv.Workers())

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // Serve never returns nil before Shutdown
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "zipserverd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	<-errc // reap the Serve goroutine (returns http.ErrServerClosed)
	if *metrics != "" {
		if err := srv.Registry().WriteSnapshot(*metrics); err != nil {
			return err
		}
	}
	return nil
}
