package main

import (
	"bytes"
	"testing"
)

func TestParsePlant(t *testing.T) {
	id, n, secret, err := parsePlant("victim=64:key=HUNTER2")
	if err != nil {
		t.Fatal(err)
	}
	if id != "victim" || n != 64 || !bytes.Equal(secret, []byte("key=HUNTER2")) {
		t.Fatalf("parsePlant: got (%q, %d, %q)", id, n, secret)
	}
	// The secret keeps every '=' and ':' after the first delimiters.
	_, _, secret, err = parsePlant("p=8:a=b:c")
	if err != nil || string(secret) != "a=b:c" {
		t.Fatalf("parsePlant with delimiters in secret: %q, %v", secret, err)
	}
	for _, bad := range []string{"", "victim", "victim=", "victim=:s", "victim=x:s", "=64:s"} {
		if _, _, _, err := parsePlant(bad); err == nil {
			t.Fatalf("parsePlant(%q) should fail", bad)
		}
	}
}
