// Command zipfingerprint runs the paper's second end-to-end attack (§VI):
// it generates Flush+Reload traces of the bzip2 compressor's
// mainSort/fallbackSort activity for a file corpus, trains the
// classifier, and prints the resulting confusion matrix (Figs 7 and 8).
//
// Usage:
//
//	zipfingerprint -experiment fig7 -traces 40
//	zipfingerprint -experiment fig8
//	zipfingerprint -experiment fig7 -metrics m.json -progress
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/zipchannel/zipchannel/internal/corpus"
	"github.com/zipchannel/zipchannel/internal/fingerprint"
	"github.com/zipchannel/zipchannel/internal/nn"
	"github.com/zipchannel/zipchannel/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zipfingerprint:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("experiment", "fig7", "fig7 (21-file corpus) or fig8 (repetitiveness series)")
		traces   = flag.Int("traces", 40, "traces recorded per file")
		noise    = flag.Float64("noise", 0.05, "unrelated shared-library accesses per sample")
		epochs   = flag.Int("epochs", 30, "training epochs")
		seed     = flag.Int64("seed", 7, "seed for corpus, traces, and training")
		parallel = flag.Int("parallel", 0, "worker count for trace simulation (<=0: GOMAXPROCS); output is identical at any level")
	)
	var cli obs.CLI
	cli.Bind(flag.CommandLine)
	flag.Parse()

	var files []corpus.File
	switch *exp {
	case "fig7":
		files = corpus.BrotliLike(*seed)
	case "fig8":
		files = corpus.RepetitivenessSeries(*seed, 20000)
	default:
		return fmt.Errorf("unknown experiment %q (fig7 or fig8)", *exp)
	}

	reg, err := cli.Start()
	if err != nil {
		return err
	}
	defer cli.Finish()

	fmt.Fprintf(os.Stderr, "recording %d Flush+Reload traces for each of %d files...\n", *traces, len(files))
	ds, err := fingerprint.BuildDataset(files, fingerprint.DatasetConfig{
		TracesPerFile: *traces,
		NoiseRate:     *noise,
		Seed:          *seed,
		Parallelism:   *parallel,
		Obs:           reg,
	})
	if err != nil {
		return err
	}
	train, _, test := nn.Split(ds, 0.8, 0.1, *seed+1)
	fmt.Fprintf(os.Stderr, "training on %d traces, testing on %d...\n", len(train), len(test))

	m, err := nn.New(*seed+2, 2*fingerprint.PoolWidth, 64, len(files))
	if err != nil {
		return err
	}
	epochCtr := reg.Counter("nn.epochs")
	lossGauge := reg.Gauge("nn.loss")
	if _, err := m.Train(train, nn.TrainConfig{
		Epochs: *epochs, LR: 0.02, LRDecay: 0.95,
		Verbose: func(epoch int, loss float64) {
			epochCtr.Inc()
			lossGauge.Set(loss)
			if epoch%10 == 9 {
				fmt.Fprintf(os.Stderr, "  epoch %2d: loss %.4f\n", epoch+1, loss)
			}
		},
	}); err != nil {
		return err
	}

	cm, err := m.ConfusionMatrix(test)
	if err != nil {
		return err
	}
	acc, err := m.Accuracy(test)
	if err != nil {
		return err
	}
	reg.Gauge("nn.test_acc").Set(acc)
	fmt.Printf("\nconfusion matrix (rows = actual file, columns = prediction):\n")
	printConfusion(files, cm)
	fmt.Printf("\ntest accuracy: %.2f (chance: %.3f)\n", acc, 1/float64(len(files)))
	return cli.Finish()
}

func printConfusion(files []corpus.File, cm [][]float64) {
	const w = 9
	fmt.Printf("%*s", w+2, "")
	for _, f := range files {
		fmt.Printf("%*s ", w, trunc(f.Name, w))
	}
	fmt.Println()
	for i, row := range cm {
		fmt.Printf("%*s  ", w, trunc(files[i].Name, w))
		for _, v := range row {
			fmt.Printf("%*.2f ", w, v)
		}
		fmt.Println()
	}
}

func trunc(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
