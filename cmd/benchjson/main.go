// Command benchjson converts `go test -bench` text output into a JSON
// document, so the Makefile's bench-json target can persist one machine-
// readable perf record per PR (BENCH_PR3.json, BENCH_PR4.json, ...) and the
// repo's performance trajectory accumulates alongside the code.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' . | benchjson -out BENCH_PR3.json
//
// Non-benchmark lines (goos/goarch headers, PASS, ok) are ignored. Each
// benchmark line becomes one record carrying its iteration count, ns/op,
// MB/s when present, and every custom metric (the repo's benchmarks attach
// accuracy headlines like bitAcc via b.ReportMetric).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Procs is the stripped -N suffix (0 when absent).
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	MBPerS     float64            `json:"mb_per_s,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsGen  float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// benchDoc is the emitted document.
type benchDoc struct {
	GeneratedBy string        `json:"generated_by"`
	Results     []benchResult `json:"results"`
}

var procSuffix = regexp.MustCompile(`-(\d+)$`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	if err := run(os.Stdin, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, outPath string) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	results = dedup(results)
	doc := benchDoc{GeneratedBy: "make bench-json", Results: results}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(outPath, b, 0o644)
}

// dedup keeps the last record for each name, preserving first-seen
// order. bench-json concatenates a whole-suite pass with a longer
// -benchtime re-measurement of the regression-gated benchmarks, and the
// later (more trustworthy) numbers must win.
func dedup(results []benchResult) []benchResult {
	last := make(map[string]int, len(results))
	for i, r := range results {
		last[r.Name] = i
	}
	out := results[:0]
	for i, r := range results {
		if last[r.Name] == i {
			out = append(out, r)
		}
	}
	return out
}

// parse scans benchmark output, keeping only Benchmark lines.
func parse(in io.Reader) ([]benchResult, error) {
	var results []benchResult
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin (pipe `go test -bench` output in)")
	}
	return results, nil
}

// parseLine decodes one "BenchmarkName-N  iters  v unit  v unit ..." line.
func parseLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return benchResult{}, false
	}
	var r benchResult
	r.Name = fields[0]
	if m := procSuffix.FindStringSubmatch(r.Name); m != nil {
		r.Procs, _ = strconv.Atoi(m[1])
		r.Name = strings.TrimSuffix(r.Name, m[0])
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r.Iterations = iters
	// The rest is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsGen = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
