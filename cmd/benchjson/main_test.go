package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/zipchannel/zipchannel
cpu: Some CPU
BenchmarkFig2ZlibTaint-8             	       1	  52034011 ns/op	        14.00 gadgets
BenchmarkLZ77Compress-8              	       1	   4161339 ns/op	  15.75 MB/s
BenchmarkE7SGXAttack                 	       2	   9000000 ns/op	         0.9720 bitAcc	     128 B/op	       3 allocs/op
PASS
ok  	github.com/zipchannel/zipchannel	12.639s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}

	r := results[0]
	if r.Name != "BenchmarkFig2ZlibTaint" || r.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 1 || r.NsPerOp != 52034011 {
		t.Fatalf("iters/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.Metrics["gadgets"] != 14.0 {
		t.Fatalf("gadgets metric = %v", r.Metrics["gadgets"])
	}

	if results[1].MBPerS != 15.75 {
		t.Fatalf("MB/s = %v", results[1].MBPerS)
	}

	r = results[2]
	if r.Procs != 0 || r.Name != "BenchmarkE7SGXAttack" {
		t.Fatalf("suffix-free name parsed as %q/%d", r.Name, r.Procs)
	}
	if r.Metrics["bitAcc"] != 0.9720 || r.BytesPerOp != 128 || r.AllocsGen != 3 {
		t.Fatalf("custom/alloc metrics = %v / %v / %v", r.Metrics, r.BytesPerOp, r.AllocsGen)
	}
}

func TestParseEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("want an error when no benchmark lines are present")
	}
}
