// Command experiments regenerates the paper's tables and figures (the
// per-experiment index is DESIGN.md §4).
//
// Usage:
//
//	experiments -run all            # everything, full size
//	experiments -run fig7 -quick    # one experiment, reduced size
//	experiments -run sgx -json      # machine-readable manifest on stdout
//	experiments -list
//
// In -json mode, stdout carries one manifest object for a single
// experiment or an array of manifests for -run all; human-readable
// status goes to stderr. The manifest embeds the full telemetry
// snapshot (cache hits/misses, stepper transitions, recovery accuracy
// — see internal/obs), which is deterministic under the fixed
// per-experiment seeds. Wall-clock durations go to stderr only, so
// stdout is byte-identical between runs and across -parallel levels.
//
// -parallel N fans independent experiments (and each experiment's
// internal trials) across N workers; the scheduler's seed-splitting
// keeps every output byte-identical at any level. -seed S
// re-parameterizes every experiment's RNG deterministically from one
// root; 0 (the default) keeps the paper-pinned seeds.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/zipchannel/zipchannel/internal/experiments"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/vm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name     = flag.String("run", "all", "experiment name or 'all'")
		quick    = flag.Bool("quick", false, "reduced input sizes")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonMode = flag.Bool("json", false, "emit machine-readable manifests on stdout")
		parallel = flag.Int("parallel", 0, "worker count for experiments and their inner trials (<=0: GOMAXPROCS); output is identical at any level")
		rootSeed = flag.Int64("seed", 0, "root seed re-parameterizing every experiment deterministically (0: the paper-pinned seeds)")
		engine   = flag.String("engine", "compiled", "VM execution engine: compiled (threaded code) or interp (kept for differential runs)")
	)
	var cli obs.CLI
	cli.Bind(flag.CommandLine)
	flag.Parse()

	eng, err := vm.ParseEngine(*engine)
	if err != nil {
		return err
	}
	vm.SetDefaultEngine(eng)

	if *list {
		for _, r := range experiments.All() {
			fmt.Println(r.Name)
		}
		return nil
	}

	var runners []experiments.Runner
	single := *name != "all"
	if single {
		r, ok := experiments.Lookup(*name)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *name)
		}
		runners = []experiments.Runner{r}
	} else {
		runners = experiments.All()
	}

	// -metrics/-trace/-progress attach one shared registry across the
	// whole run; each experiment runs against its own private registry so
	// manifests stay per-experiment, and the scheduler merges the private
	// registries into the shared one in registry order.
	reg, err := cli.Start()
	if err != nil {
		return err
	}
	defer cli.Finish()

	var manifests []*experiments.Manifest
	_, runErr := experiments.RunAll(context.Background(), experiments.RunOptions{
		Runners:     runners,
		Quick:       *quick,
		Parallelism: *parallel,
		RootSeed:    *rootSeed,
		Obs:         reg,
		// OnResult arrives in registry order whatever the parallelism, so
		// the streamed output never interleaves or reorders.
		OnResult: func(o *experiments.Outcome) {
			if o.Err != nil {
				fmt.Fprintf(os.Stderr, "=== %s: FAILED: %v\n\n", o.Runner.Name, o.Err)
				return
			}
			mergeMetrics(reg, o.Runner.Name, o.Result.Metrics)
			if *jsonMode {
				manifests = append(manifests, o.Manifest)
				fmt.Fprintf(os.Stderr, "%s ok in %s\n", o.Runner.Name, o.Duration.Round(time.Millisecond))
				return
			}
			fmt.Print(o.Result)
			fmt.Fprintf(os.Stderr, "(%s in %s)\n\n", o.Runner.Name, o.Duration.Round(time.Millisecond))
		},
	})

	if *jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if single && len(manifests) == 1 {
			if err := enc.Encode(manifests[0]); err != nil {
				return err
			}
		} else if err := enc.Encode(manifests); err != nil {
			return err
		}
	}
	if runErr != nil {
		return runErr
	}
	return cli.Finish()
}

// mergeMetrics mirrors an experiment's headline metrics into the shared
// -metrics registry as gauges, namespaced by experiment.
func mergeMetrics(reg *obs.Registry, name string, metrics map[string]float64) {
	for k, v := range metrics {
		reg.Gauge(name + "." + k).Set(v)
	}
	reg.Counter("experiments.completed").Inc()
}
