// Command experiments regenerates the paper's tables and figures (the
// per-experiment index is DESIGN.md §4).
//
// Usage:
//
//	experiments -run all            # everything, full size
//	experiments -run fig7 -quick    # one experiment, reduced size
//	experiments -run sgx -json      # machine-readable manifest on stdout
//	experiments -list
//
// In -json mode, stdout carries one manifest object for a single
// experiment or an array of manifests for -run all; human-readable
// status goes to stderr. The manifest embeds the full telemetry
// snapshot (cache hits/misses, stepper transitions, recovery accuracy
// — see internal/obs), which is deterministic under the fixed
// per-experiment seeds; only duration_ms varies between runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/zipchannel/zipchannel/internal/experiments"
	"github.com/zipchannel/zipchannel/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name     = flag.String("run", "all", "experiment name or 'all'")
		quick    = flag.Bool("quick", false, "reduced input sizes")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonMode = flag.Bool("json", false, "emit machine-readable manifests on stdout")
	)
	var cli obs.CLI
	cli.Bind(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Println(r.Name)
		}
		return nil
	}

	var runners []experiments.Runner
	single := *name != "all"
	if single {
		r, ok := experiments.Lookup(*name)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *name)
		}
		runners = []experiments.Runner{r}
	} else {
		runners = experiments.All()
	}

	// -metrics/-trace/-progress attach one shared registry across the
	// whole run; each experiment additionally gets its own private
	// registry inside Execute so manifests stay per-experiment.
	reg, err := cli.Start()
	if err != nil {
		return err
	}
	defer cli.Finish()

	var manifests []*experiments.Manifest
	failed := 0
	for _, r := range runners {
		start := time.Now()
		res, m, err := experiments.Execute(r, *quick, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "=== %s: FAILED: %v\n\n", r.Name, err)
			failed++
			continue
		}
		mergeMetrics(reg, r.Name, res.Metrics)
		if *jsonMode {
			manifests = append(manifests, m)
			fmt.Fprintf(os.Stderr, "%s ok in %s\n", r.Name, time.Since(start).Round(time.Millisecond))
			continue
		}
		fmt.Print(res)
		fmt.Fprintf(os.Stderr, "(%s in %s)\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}

	if *jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if single && len(manifests) == 1 {
			if err := enc.Encode(manifests[0]); err != nil {
				return err
			}
		} else if err := enc.Encode(manifests); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return cli.Finish()
}

// mergeMetrics mirrors an experiment's headline metrics into the shared
// -metrics registry as gauges, namespaced by experiment.
func mergeMetrics(reg *obs.Registry, name string, metrics map[string]float64) {
	for k, v := range metrics {
		reg.Gauge(name + "." + k).Set(v)
	}
	reg.Counter("experiments.completed").Inc()
}
