// Command experiments regenerates the paper's tables and figures (the
// per-experiment index is DESIGN.md §4).
//
// Usage:
//
//	experiments -run all            # everything, full size
//	experiments -run fig7 -quick    # one experiment, reduced size
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/zipchannel/zipchannel/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name  = flag.String("run", "all", "experiment name or 'all'")
		quick = flag.Bool("quick", false, "reduced input sizes")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Println(r.Name)
		}
		return nil
	}

	var runners []experiments.Runner
	if *name == "all" {
		runners = experiments.All()
	} else {
		r, ok := experiments.Lookup(*name)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *name)
		}
		runners = []experiments.Runner{r}
	}

	failed := 0
	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(*quick)
		if err != nil {
			fmt.Printf("=== %s: FAILED: %v\n\n", r.Name, err)
			failed++
			continue
		}
		fmt.Print(res)
		fmt.Printf("(%s in %s)\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}
