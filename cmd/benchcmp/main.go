// Command benchcmp diffs two BENCH_*.json perf records (written by
// cmd/benchjson via `make bench-json`) and prints per-benchmark speedup
// ratios, so the repo's performance trajectory across PRs is a one-liner:
//
//	benchcmp -base BENCH_PR3.json -new BENCH_PR4.json
//
// Speedup is base/new on ns/op (>1 means the new record is faster).
// Benchmarks present in only one record are listed separately so a
// renamed or dropped benchmark cannot silently vanish from the
// comparison.
//
// With -gate, benchcmp is also the CI regression gate: benchmarks whose
// names match the regexp are compared against -max-regress (a fraction:
// 0.25 means new may be at most 25% slower than base), and any gated
// benchmark that regresses past the threshold — or is present in the
// baseline but missing from the new record — makes benchcmp exit
// non-zero:
//
//	benchcmp -base BENCH_PR9.json -new fresh.json \
//	         -gate 'TaintAnalysis|Fig[0-9]+.*Taint' -max-regress 0.25
//
// Without -gate a slowdown is a fact to report, not a tool failure, and
// benchcmp exits non-zero only on I/O or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
	"text/tabwriter"
)

// benchResult mirrors cmd/benchjson's record (only the fields the
// comparison needs; unknown fields are ignored by encoding/json).
type benchResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s,omitempty"`
}

type benchDoc struct {
	Results []benchResult `json:"results"`
}

// gateConfig is the regression gate: nil pattern means no gating.
type gateConfig struct {
	pattern    *regexp.Regexp
	maxRegress float64
}

// errRegression distinguishes a gate failure (a real slowdown) from the
// I/O and parse errors the tool can also hit.
type errRegression struct{ lines []string }

func (e *errRegression) Error() string {
	return fmt.Sprintf("regression gate failed:\n  %s", strings.Join(e.lines, "\n  "))
}

func main() {
	base := flag.String("base", "", "baseline BENCH_*.json (required)")
	next := flag.String("new", "", "new BENCH_*.json (required)")
	gate := flag.String("gate", "", "regexp of benchmark names to gate on regression (empty: report only)")
	maxRegress := flag.Float64("max-regress", 0.25, "with -gate, max tolerated slowdown as a fraction of base ns/op")
	flag.Parse()
	if *base == "" || *next == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: both -base and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	var g gateConfig
	if *gate != "" {
		re, err := regexp.Compile(*gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp: bad -gate pattern:", err)
			os.Exit(2)
		}
		g = gateConfig{pattern: re, maxRegress: *maxRegress}
	}
	if err := run(os.Stdout, *base, *next, g); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

func load(path string) (map[string]benchResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	m := make(map[string]benchResult, len(doc.Results))
	for _, r := range doc.Results {
		m[r.Name] = r
	}
	return m, nil
}

func run(w io.Writer, basePath, newPath string, g gateConfig) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	next, err := load(newPath)
	if err != nil {
		return err
	}

	var common, baseOnly, newOnly []string
	for name := range base {
		if _, ok := next[name]; ok {
			common = append(common, name)
		} else {
			baseOnly = append(baseOnly, name)
		}
	}
	for name := range next {
		if _, ok := base[name]; !ok {
			newOnly = append(newOnly, name)
		}
	}
	sort.Strings(common)
	sort.Strings(baseOnly)
	sort.Strings(newOnly)

	var regressions []string
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tbase\tnew\tspeedup\n")
	for _, name := range common {
		b, n := base[name], next[name]
		mark := ""
		if g.pattern != nil && g.pattern.MatchString(name) &&
			b.NsPerOp > 0 && n.NsPerOp > b.NsPerOp*(1+g.maxRegress) {
			mark = "  REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %s -> %s (+%.0f%%, limit +%.0f%%)",
				name, formatNs(b.NsPerOp), formatNs(n.NsPerOp),
				(n.NsPerOp/b.NsPerOp-1)*100, g.maxRegress*100))
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s%s\n",
			strings.TrimPrefix(name, "Benchmark"),
			formatNs(b.NsPerOp), formatNs(n.NsPerOp), speedup(b.NsPerOp, n.NsPerOp), mark)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, name := range baseOnly {
		fmt.Fprintf(w, "only in %s: %s\n", basePath, name)
		if g.pattern != nil && g.pattern.MatchString(name) {
			regressions = append(regressions, fmt.Sprintf("%s: present in %s but missing from %s", name, basePath, newPath))
		}
	}
	for _, name := range newOnly {
		fmt.Fprintf(w, "only in %s: %s\n", newPath, name)
	}
	if len(regressions) > 0 {
		return &errRegression{lines: regressions}
	}
	return nil
}

// speedup renders base/new as "N.NNx" ( >1 is faster); degenerate inputs
// (zero or missing ns/op) come out as "?" rather than Inf/NaN.
func speedup(base, next float64) string {
	if base <= 0 || next <= 0 {
		return "?"
	}
	return fmt.Sprintf("%.2fx", base/next)
}

// formatNs prints a duration-style value at the scale a reader wants:
// raw ns below 1µs, then µs/ms/s with two decimals.
func formatNs(ns float64) string {
	switch {
	case ns <= 0:
		return "?"
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.2fms", ns/1e6)
	default:
		return fmt.Sprintf("%.2fs", ns/1e9)
	}
}
