package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompare(t *testing.T) {
	base := writeDoc(t, "base.json", `{"results":[
		{"name":"BenchmarkTaintAnalysis","ns_per_op":185000000},
		{"name":"BenchmarkLZ77Compress","ns_per_op":73000000,"mb_per_s":0.9},
		{"name":"BenchmarkDropped","ns_per_op":100}
	]}`)
	next := writeDoc(t, "new.json", `{"results":[
		{"name":"BenchmarkTaintAnalysis","ns_per_op":26000000},
		{"name":"BenchmarkLZ77Compress","ns_per_op":4000000,"mb_per_s":16.2},
		{"name":"BenchmarkAdded","ns_per_op":50}
	]}`)

	var sb strings.Builder
	if err := run(&sb, base, next, gateConfig{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"TaintAnalysis", "7.12x", // 185/26
		"LZ77Compress", "18.25x", // 73/4
		"only in " + base + ": BenchmarkDropped",
		"only in " + next + ": BenchmarkAdded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Errorf("degenerate ratio leaked into output:\n%s", out)
	}
}

func TestCompareErrors(t *testing.T) {
	good := writeDoc(t, "good.json", `{"results":[{"name":"BenchmarkX","ns_per_op":1}]}`)
	empty := writeDoc(t, "empty.json", `{"results":[]}`)
	bad := writeDoc(t, "bad.json", `not json`)

	var sb strings.Builder
	if err := run(&sb, good, empty, gateConfig{}); err == nil {
		t.Error("want error for empty results")
	}
	if err := run(&sb, bad, good, gateConfig{}); err == nil {
		t.Error("want error for malformed JSON")
	}
	if err := run(&sb, filepath.Join(t.TempDir(), "missing.json"), good, gateConfig{}); err == nil {
		t.Error("want error for missing file")
	}
}

func TestRegressionGate(t *testing.T) {
	base := writeDoc(t, "base.json", `{"results":[
		{"name":"BenchmarkTaintAnalysis","ns_per_op":4000000},
		{"name":"BenchmarkFig4BzipTaint","ns_per_op":3000000},
		{"name":"BenchmarkLZ77Compress","ns_per_op":1000000}
	]}`)
	gate := gateConfig{pattern: regexp.MustCompile(`TaintAnalysis|Fig[0-9]+.*Taint`), maxRegress: 0.25}

	// Within the 25% envelope: no failure, even though LZ77 (ungated)
	// doubled.
	ok := writeDoc(t, "ok.json", `{"results":[
		{"name":"BenchmarkTaintAnalysis","ns_per_op":4900000},
		{"name":"BenchmarkFig4BzipTaint","ns_per_op":2000000},
		{"name":"BenchmarkLZ77Compress","ns_per_op":2000000}
	]}`)
	var sb strings.Builder
	if err := run(&sb, base, ok, gate); err != nil {
		t.Errorf("within-envelope run failed the gate: %v\n%s", err, sb.String())
	}

	// A gated benchmark 50% slower must fail and name the offender.
	slow := writeDoc(t, "slow.json", `{"results":[
		{"name":"BenchmarkTaintAnalysis","ns_per_op":6000000},
		{"name":"BenchmarkFig4BzipTaint","ns_per_op":3000000},
		{"name":"BenchmarkLZ77Compress","ns_per_op":1000000}
	]}`)
	sb.Reset()
	err := run(&sb, base, slow, gate)
	if err == nil {
		t.Fatal("50% regression passed the gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkTaintAnalysis") {
		t.Errorf("gate error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("table does not mark the regression:\n%s", sb.String())
	}

	// A gated benchmark vanishing from the new record must also fail.
	missing := writeDoc(t, "missing.json", `{"results":[
		{"name":"BenchmarkTaintAnalysis","ns_per_op":4000000},
		{"name":"BenchmarkLZ77Compress","ns_per_op":1000000}
	]}`)
	sb.Reset()
	if err := run(&sb, base, missing, gate); err == nil {
		t.Error("missing gated benchmark passed the gate")
	}

	// Without a gate the same slowdown is only reported.
	sb.Reset()
	if err := run(&sb, base, slow, gateConfig{}); err != nil {
		t.Errorf("ungated comparison returned error: %v", err)
	}
}

func TestSpeedupFormatting(t *testing.T) {
	if got := speedup(0, 5); got != "?" {
		t.Errorf("speedup(0,5) = %q", got)
	}
	if got := speedup(10, 0); got != "?" {
		t.Errorf("speedup(10,0) = %q", got)
	}
	if got := formatNs(1500); got != "1.50µs" {
		t.Errorf("formatNs(1500) = %q", got)
	}
	if got := formatNs(2.5e9); got != "2.50s" {
		t.Errorf("formatNs(2.5e9) = %q", got)
	}
}
