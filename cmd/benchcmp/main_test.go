package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompare(t *testing.T) {
	base := writeDoc(t, "base.json", `{"results":[
		{"name":"BenchmarkTaintAnalysis","ns_per_op":185000000},
		{"name":"BenchmarkLZ77Compress","ns_per_op":73000000,"mb_per_s":0.9},
		{"name":"BenchmarkDropped","ns_per_op":100}
	]}`)
	next := writeDoc(t, "new.json", `{"results":[
		{"name":"BenchmarkTaintAnalysis","ns_per_op":26000000},
		{"name":"BenchmarkLZ77Compress","ns_per_op":4000000,"mb_per_s":16.2},
		{"name":"BenchmarkAdded","ns_per_op":50}
	]}`)

	var sb strings.Builder
	if err := run(&sb, base, next); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"TaintAnalysis", "7.12x", // 185/26
		"LZ77Compress", "18.25x", // 73/4
		"only in " + base + ": BenchmarkDropped",
		"only in " + next + ": BenchmarkAdded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Errorf("degenerate ratio leaked into output:\n%s", out)
	}
}

func TestCompareErrors(t *testing.T) {
	good := writeDoc(t, "good.json", `{"results":[{"name":"BenchmarkX","ns_per_op":1}]}`)
	empty := writeDoc(t, "empty.json", `{"results":[]}`)
	bad := writeDoc(t, "bad.json", `not json`)

	var sb strings.Builder
	if err := run(&sb, good, empty); err == nil {
		t.Error("want error for empty results")
	}
	if err := run(&sb, bad, good); err == nil {
		t.Error("want error for malformed JSON")
	}
	if err := run(&sb, filepath.Join(t.TempDir(), "missing.json"), good); err == nil {
		t.Error("want error for missing file")
	}
}

func TestSpeedupFormatting(t *testing.T) {
	if got := speedup(0, 5); got != "?" {
		t.Errorf("speedup(0,5) = %q", got)
	}
	if got := speedup(10, 0); got != "?" {
		t.Errorf("speedup(10,0) = %q", got)
	}
	if got := formatNs(1500); got != "1.50µs" {
		t.Errorf("formatNs(1500) = %q", got)
	}
	if got := formatNs(2.5e9); got != "2.50s" {
		t.Errorf("formatNs(2.5e9) = %q", got)
	}
}
