package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/server"
)

// TestRunLoadAgainstLiveServer is the in-process version of the Makefile
// smoke target: boot internal/server, drive it with several verifying
// clients across all codecs, and require zero errors plus sane metrics.
func TestRunLoadAgainstLiveServer(t *testing.T) {
	s := server.New(server.Config{Workers: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cfg := loadConfig{
		BaseURL:  ts.URL,
		Clients:  4,
		Requests: 6,
		Codecs:   []string{"lz77", "lzw", "bwt"},
		Seed:     1,
		Verify:   true,
		BodyCap:  2048,
	}
	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors (first: %s)", res.Errors, res.FirstError)
	}
	// 4 clients x 6 compress requests, each verified with a decompress.
	if want := uint64(4 * 6 * 2); res.Requests != want {
		t.Fatalf("requests = %d, want %d", res.Requests, want)
	}
	snap := res.Registry.Snapshot()
	if h := snap.Histograms["zipload.latency_us"]; h.Count != res.Requests {
		t.Fatalf("latency histogram count = %d, want %d", h.Count, res.Requests)
	}
	if res.ServerSnap == nil {
		t.Fatal("server /metrics snapshot not fetched")
	}
	if res.ServerSnap.Counters["server.requests"] != res.Requests {
		t.Fatalf("server saw %d requests, client sent %d",
			res.ServerSnap.Counters["server.requests"], res.Requests)
	}

	var sb strings.Builder
	res.report(&sb, cfg)
	out := sb.String()
	for _, want := range []string{"0 errors", "server cache:", "latency:", "hit rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunLoadCountsServerErrors points the generator at a corrupting codec
// path by shrinking the server's body cap below the pool's body size: every
// compress should fail with 413 and be counted, not crash.
func TestRunLoadCountsServerErrors(t *testing.T) {
	s := server.New(server.Config{MaxBodyBytes: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	res, err := runLoad(loadConfig{
		BaseURL:  ts.URL,
		Clients:  2,
		Requests: 3,
		Codecs:   []string{"lzw"},
		Seed:     2,
		Verify:   true,
		BodyCap:  1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("expected 413 failures to be counted as errors")
	}
	if !strings.Contains(res.FirstError, "status 413") {
		t.Fatalf("first error should carry the status, got %q", res.FirstError)
	}
}

// TestRunLoadRetriesRecoverInjectedFaults is the in-process core of
// make test-chaos: a fault-armed server (injected codec errors and
// panics) driven by verifying clients with backoff retries. Every
// round trip must still come back byte-correct with zero unrecovered
// errors, and the retry path must actually have fired.
func TestRunLoadRetriesRecoverInjectedFaults(t *testing.T) {
	faults := fault.NewRegistry(7)
	if err := faults.ArmAll("server.codec.compress=error:0.06,server.codec.compress=panic:0.03,server.codec.decompress=error:0.06"); err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Workers: 4, Faults: faults, CodecRetries: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	res, err := runLoad(loadConfig{
		BaseURL:   ts.URL,
		Clients:   4,
		Requests:  12,
		Codecs:    []string{"lz77", "lzw", "bwt"},
		Seed:      4,
		Verify:    true,
		BodyCap:   1024,
		Retries:   5,
		RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d unrecovered errors under injected faults (first: %s)", res.Errors, res.FirstError)
	}
	retries := res.Registry.Snapshot().Counters["zipload.retries"]
	if retries == 0 {
		t.Fatal("no retries recorded — the fault profile never fired")
	}
	var sb strings.Builder
	res.report(&sb, loadConfig{Codecs: []string{"lz77"}})
	if !strings.Contains(sb.String(), "retries:") {
		t.Fatalf("report should surface the retry count:\n%s", sb.String())
	}
}

// TestRunLoadDeadServer checks the upfront health probe turns a dead
// server into one clear error.
func TestRunLoadDeadServer(t *testing.T) {
	_, err := runLoad(loadConfig{
		BaseURL:  "http://127.0.0.1:1", // nothing listens here
		Clients:  2,
		Requests: 1,
		Codecs:   []string{"lz77"},
		BodyCap:  64,
	})
	if err == nil || !strings.Contains(err.Error(), "not reachable") {
		t.Fatalf("want reachability error, got %v", err)
	}
}

// TestBodyPoolDeterministic: same seed, same pool; bodies respect the cap.
func TestBodyPoolDeterministic(t *testing.T) {
	a := bodyPool(7, 512)
	b := bodyPool(7, 512)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("pool sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) > 512 {
			t.Fatalf("body %d exceeds cap: %d bytes", i, len(a[i]))
		}
		if string(a[i]) != string(b[i]) {
			t.Fatalf("body %d differs across identical seeds", i)
		}
	}
}

// TestParseCodecs covers subsets, whitespace, and rejects.
func TestParseCodecs(t *testing.T) {
	got, err := parseCodecs(" bwt , lz77 ")
	if err != nil || len(got) != 2 || got[0] != "bwt" || got[1] != "lz77" {
		t.Fatalf("parseCodecs = %v, %v", got, err)
	}
	if _, err := parseCodecs("zstd"); err == nil {
		t.Fatal("parseCodecs should reject unknown names")
	}
	if _, err := parseCodecs(""); err == nil {
		t.Fatal("parseCodecs should reject an empty set")
	}
}

// TestDurationMode sanity-checks the deadline loop terminates promptly.
func TestDurationMode(t *testing.T) {
	s := server.New(server.Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	start := time.Now()
	res, err := runLoad(loadConfig{
		BaseURL:  ts.URL,
		Clients:  2,
		Duration: 200 * time.Millisecond,
		Codecs:   []string{"lzw"},
		Seed:     3,
		Verify:   false,
		BodyCap:  256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors (first: %s)", res.Errors, res.FirstError)
	}
	if res.Requests == 0 {
		t.Fatal("duration mode sent no requests")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("duration mode ran way past its deadline: %v", elapsed)
	}
}
