// Command zipload is a seeded, deterministic traffic generator for
// zipserverd. It draws request bodies from internal/corpus (so the payload
// mix is reproducible from one -seed), fans -clients workers with
// par.ForEach (each client owns an RNG stream split from the root seed and
// a private obs.Registry, merged in client order afterwards), and reports
// throughput, error counts, the server's cache hit rate (read back from
// GET /metrics), and a client-side request-latency histogram.
//
// Usage:
//
//	zipload -url http://127.0.0.1:8321 -clients 8 -duration 2s
//	zipload -url http://127.0.0.1:8321 -clients 4 -requests 100 -codecs bwt
//
// Every compress request is round-trip verified through the matching
// decompress endpoint unless -verify=false. The exit status is non-zero if
// any request failed, so scripts (the Makefile smoke target) can assert
// zero errors.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/zipchannel/zipchannel/internal/compress/codec"
	"github.com/zipchannel/zipchannel/internal/corpus"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"

	"math/rand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zipload:", err)
		var ue *unreachableError
		if errors.As(err, &ue) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

func run() error {
	var (
		url      = flag.String("url", "http://127.0.0.1:8321", "zipserverd base URL")
		urls     = flag.String("urls", "", "comma-separated zipserverd base URLs (cluster mode: consistent-hash routing; overrides -url)")
		zipfS    = flag.Float64("zipf", 0, "Zipf skew s for body selection (> 1; 0 = uniform) — hot-key traffic for cache-tier benchmarks")
		digest   = flag.Bool("digest", false, "print the order-insensitive XOR-of-SHA256 digest over all response bodies (byte-identity comparisons across runs)")
		clients  = flag.Int("clients", 8, "concurrent client workers")
		duration = flag.Duration("duration", 2*time.Second, "how long to generate load")
		requests = flag.Int("requests", 0, "requests per client (overrides -duration when > 0)")
		codecs   = flag.String("codecs", codec.NamesString(), "comma-separated codec subset")
		seed     = flag.Int64("seed", 1, "root seed for the body pool and per-client RNG streams")
		verify   = flag.Bool("verify", true, "round-trip every compression through decompress")
		bodyCap  = flag.Int("body-bytes", 4096, "truncate corpus bodies to this many bytes")
		metrics  = flag.String("metrics", "", "write the merged client obs snapshot to this file")
		pageFrac = flag.Float64("pagestore", 0, "fraction of iterations that drive PUT/GET /v1/pages/{id} (0 disables; requires zipserverd -pagestore)")
		pageIDs  = flag.Int("page-ids", 4, "distinct page ids per client for -pagestore traffic")
		pageB    = flag.Int("page-bytes", 4096, "page payload cap; match the server's -page-size")
		retries  = flag.Int("retries", 3, "retry attempts per request on 5xx/connection errors (0 disables)")
		rbase    = flag.Duration("retry-base", 5*time.Millisecond, "exponential-backoff base; jitter in [0,base) is drawn from the client's seeded RNG")
		rmax     = flag.Duration("retry-max", 2*time.Second, "cap on one attempt's backoff, including an honored Retry-After (0 = uncapped)")
		hedge    = flag.Duration("hedge", 0, "hedge a request to the next ring owner when the primary hasn't answered within this delay (0 disables; cluster mode only)")
		hedgeBud = flag.Int("hedge-budget", 64, "max hedged requests per client stream (with -hedge)")
	)
	flag.Parse()

	names, err := parseCodecs(*codecs)
	if err != nil {
		return err
	}
	cfg := loadConfig{
		BaseURL:   strings.TrimRight(*url, "/"),
		ZipfS:     *zipfS,
		Digest:    *digest,
		Clients:   *clients,
		Duration:  *duration,
		Requests:  *requests,
		Codecs:    names,
		Seed:      *seed,
		Verify:    *verify,
		BodyCap:   *bodyCap,
		PageFrac:  *pageFrac,
		PageIDs:   *pageIDs,
		PageBytes: *pageB,
		Retries:     *retries,
		RetryBase:   *rbase,
		RetryMax:    *rmax,
		Hedge:       *hedge,
		HedgeBudget: *hedgeBud,
	}
	if *urls != "" {
		for _, part := range strings.Split(*urls, ",") {
			if u := strings.TrimRight(strings.TrimSpace(part), "/"); u != "" {
				cfg.URLs = append(cfg.URLs, u)
			}
		}
	}
	res, err := runLoad(cfg)
	if err != nil {
		return err
	}
	res.report(os.Stdout, cfg)
	if *metrics != "" {
		if err := res.Registry.WriteSnapshot(*metrics); err != nil {
			return err
		}
	}
	if len(res.Unreachable) > 0 {
		// Liveness, not correctness: exit 3 so scripts can tell a dead
		// instance from verification noise — even when failover kept the
		// error count at zero.
		return &unreachableError{
			addrs:    res.Unreachable,
			errs:     res.Errors,
			requests: res.Requests,
			first:    res.FirstError,
		}
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed (first: %s)", res.Errors, res.Requests, res.FirstError)
	}
	return nil
}

// parseCodecs validates a comma-separated subset against the registry.
func parseCodecs(s string) ([]string, error) {
	var names []string
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if _, ok := codec.Lookup(name); !ok {
			return nil, fmt.Errorf("unknown codec %q (have %s)", name, codec.NamesString())
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no codecs selected (have %s)", codec.NamesString())
	}
	return names, nil
}

// loadConfig parameterizes one load run.
type loadConfig struct {
	BaseURL string
	// URLs enables cluster mode: requests are routed across these
	// instances by a consistent hash of (codec, body). Empty = single
	// instance at BaseURL.
	URLs []string
	// ZipfS skews body selection toward hot keys with a Zipf(s)
	// distribution (s > 1; 0 = uniform). Hot keys are what make cache
	// tiers earn their keep, so the cluster bench runs skewed.
	ZipfS float64
	// Digest accumulates the XOR of per-response SHA-256 digests —
	// order-insensitive, so comparable across runs with different
	// concurrency interleavings and cluster shapes.
	Digest   bool
	Clients  int
	Duration time.Duration
	Requests int // per client; 0 = run until Duration elapses
	Codecs   []string
	Seed     int64
	Verify   bool
	BodyCap  int
	// PageFrac > 0 makes that fraction of each client's iterations page
	// traffic (see pages.go). Strictly opt-in: 0 draws nothing from the
	// page RNG stream and folds no page response into the digest, so
	// baselines are byte-identical whether or not the servers mount a
	// page store.
	PageFrac  float64
	PageIDs   int
	PageBytes int
	pagePool  [][]byte // set by runLoad when PageFrac > 0
	// Retries is the per-request retry budget against transient failures
	// (5xx and connection errors; 4xx are never retried). Backoff is
	// RetryBase·2^attempt plus a jitter in [0, RetryBase) drawn from the
	// client's seeded RNG — drawn only when a retry actually happens, so
	// a failure-free run consumes exactly the same RNG stream as a run
	// with retries disabled. A shed response's Retry-After raises the
	// backoff floor; RetryMax caps either source.
	Retries   int
	RetryBase time.Duration
	RetryMax  time.Duration
	// Hedge > 0 arms hedged requests in cluster mode: an attempt that has
	// not answered within Hedge races a duplicate against the next ring
	// owner, first server answer wins, the loser is canceled. Off by
	// default — and when off, request flow is byte-identical to earlier
	// builds. HedgeBudget bounds hedges per client stream.
	Hedge       time.Duration
	HedgeBudget int
}

// loadResult aggregates all clients' outcomes. Registry carries the merged
// per-client metrics (zipload.latency_us etc.); ServerSnap is the server's
// /metrics snapshot fetched after the run (nil if unreachable).
type loadResult struct {
	Requests   uint64
	Errors     uint64
	BytesIn    uint64 // request bytes sent
	BytesOut   uint64 // response bytes received
	Elapsed    time.Duration
	FirstError string
	Digest     string // hex XOR-of-SHA256 over response bodies ("" unless cfg.Digest)
	Registry   *obs.Registry
	ServerSnap *obs.Snapshot
	// Unreachable lists instances that saw transport failures during the
	// run AND still fail their health probe afterwards — dead, not
	// blipped. Drives exit code 3.
	Unreachable []string
}

// allURLs is the instance list a run actually targets.
func (cfg loadConfig) allURLs() []string {
	if len(cfg.URLs) > 0 {
		return cfg.URLs
	}
	return []string{cfg.BaseURL}
}

// clientResult is one worker's slot (par.ForEach contract: each client
// writes only here).
type clientResult struct {
	requests   uint64
	errors     uint64
	firstErr   string
	digest     [sha256.Size]byte
	reg        *obs.Registry
	hedgesLeft int
}

// bodyPool builds the deterministic request-body mix: every corpus file
// truncated to cap bytes (skipping empties), so the pool spans English
// text, structured data, random bytes, zeros, and tiny degenerate inputs.
func bodyPool(seed int64, cap int) [][]byte {
	var pool [][]byte
	for _, f := range corpus.BrotliLike(seed) {
		data := f.Data
		if len(data) > cap {
			data = data[:cap]
		}
		if len(data) > 0 {
			pool = append(pool, data)
		}
	}
	return pool
}

// runLoad executes the configured load and aggregates results.
func runLoad(cfg loadConfig) (*loadResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.ZipfS != 0 && cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("-zipf skew must be > 1 (got %g)", cfg.ZipfS)
	}
	if cfg.PageFrac < 0 || cfg.PageFrac > 1 {
		return nil, fmt.Errorf("-pagestore fraction must be in [0,1] (got %g)", cfg.PageFrac)
	}
	pool := bodyPool(cfg.Seed, cfg.BodyCap)
	if cfg.PageFrac > 0 {
		if cfg.PageIDs <= 0 {
			cfg.PageIDs = 4
		}
		if cfg.PageBytes <= 0 {
			cfg.PageBytes = 4096
		}
		// The page pool caps at the page size, independent of -body-bytes:
		// a page PUT larger than the server's page is a 413, not load.
		cfg.pagePool = bodyPool(cfg.Seed, cfg.PageBytes)
	}
	urls := cfg.allURLs()
	rt := newRing(urls)
	httpc := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Clients * 2,
			MaxIdleConnsPerHost: cfg.Clients * 2,
		},
	}

	// Liveness check before unleashing the fleet. A dead instance here is
	// an unreachableError (exit 3), not generic failure noise.
	for _, u := range urls {
		if err := checkHealth(httpc, u); err != nil {
			return nil, &unreachableError{addrs: []string{u}, first: err.Error()}
		}
	}

	results := make([]clientResult, cfg.Clients)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	err := par.ForEach(cfg.Clients, cfg.Clients, func(i int) error {
		cr := &results[i]
		cr.reg = obs.NewRegistry()
		// Each client owns a private health view of the cluster (failover
		// state never crosses streams) and a hedge budget.
		var hv *healthView
		if len(urls) > 1 {
			hv = newHealthView(len(urls))
			if cfg.Hedge > 0 {
				cr.hedgesLeft = cfg.HedgeBudget
			}
		}
		rng := rand.New(rand.NewSource(par.SplitSeed(cfg.Seed, fmt.Sprintf("client-%d", i))))
		// Page traffic owns a separate RNG stream: when PageFrac is 0 it
		// is never created, so the codec request sequence (and every byte
		// of the digest) is identical to a pagestore-free build.
		var pageRng *rand.Rand
		if cfg.PageFrac > 0 {
			pageRng = rand.New(rand.NewSource(par.SplitSeed(cfg.Seed, fmt.Sprintf("pages-client-%d", i))))
		}
		// Zipf over pool *indices*: rank 0 (the first corpus body) is the
		// hottest key. Same seed → same sequence, so skewed runs stay
		// reproducible.
		var zipf *rand.Zipf
		if cfg.ZipfS > 1 {
			zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(pool)-1))
		}
		for n := 0; ; n++ {
			if cfg.Requests > 0 {
				if n >= cfg.Requests {
					return nil
				}
			} else if !time.Now().Before(deadline) {
				return nil
			}
			if pageRng != nil && pageRng.Float64() < cfg.PageFrac {
				onePageRequest(httpc, cfg, rt, i, cr, pageRng)
				continue
			}
			name := cfg.Codecs[rng.Intn(len(cfg.Codecs))]
			var body []byte
			if zipf != nil {
				body = pool[zipf.Uint64()]
			} else {
				body = pool[rng.Intn(len(pool))]
			}
			oneRequest(httpc, cfg, rt, hv, name, body, cr, rng)
		}
	})
	if err != nil {
		return nil, err
	}

	res := &loadResult{Elapsed: time.Since(start), Registry: obs.NewRegistry()}
	var acc [sha256.Size]byte
	for i := range results {
		cr := &results[i]
		res.Requests += cr.requests
		res.Errors += cr.errors
		if res.FirstError == "" && cr.firstErr != "" {
			res.FirstError = cr.firstErr
		}
		for b := range acc {
			acc[b] ^= cr.digest[b]
		}
		res.Registry.Merge(cr.reg) // client order: deterministic merge
	}
	if cfg.Digest {
		res.Digest = hex.EncodeToString(acc[:])
	}
	snap := res.Registry.Snapshot()
	res.BytesIn = snap.Counters["zipload.bytes_in"]
	res.BytesOut = snap.Counters["zipload.bytes_out"]
	// Any instance that refused connections during the run gets one final
	// health probe: still down → unreachable (exit 3); back up → a blip
	// that failover/retries absorbed, reported but not fatal.
	for i, u := range urls {
		if snap.Counters["zipload.connfail."+strconv.Itoa(i)] == 0 {
			continue
		}
		if err := checkHealth(httpc, u); err != nil {
			res.Unreachable = append(res.Unreachable, u)
		}
	}
	res.ServerSnap = fetchClusterMetrics(httpc, urls)
	return res, nil
}

// fetchClusterMetrics sums counter and gauge snapshots across all
// instances, so the report's hit-rate math sees cluster-wide totals. Any
// unreachable instance is skipped; nil only when none answered.
func fetchClusterMetrics(httpc *http.Client, urls []string) *obs.Snapshot {
	var agg *obs.Snapshot
	for _, u := range urls {
		snap := fetchMetrics(httpc, u)
		if snap == nil {
			continue
		}
		if agg == nil {
			agg = snap // freshly decoded: safe to accumulate into
			if agg.Counters == nil {
				agg.Counters = map[string]uint64{}
			}
			if agg.Gauges == nil {
				agg.Gauges = map[string]float64{}
			}
			continue
		}
		for k, v := range snap.Counters {
			agg.Counters[k] += v
		}
		for k, v := range snap.Gauges {
			agg.Gauges[k] += v
		}
	}
	return agg
}

// checkHealth probes /healthz so a dead server is one clear error instead
// of clients*requests connection failures.
func checkHealth(httpc *http.Client, base string) error {
	resp, err := httpc.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("server not reachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return nil
}

// oneRequest performs one compress (optionally + decompress verify)
// exchange, recording into the client's slot and registry.
func oneRequest(httpc *http.Client, cfg loadConfig, rt *ring, hv *healthView, name string, body []byte, cr *clientResult, rng *rand.Rand) {
	fail := func(format string, args ...any) {
		cr.errors++
		cr.reg.Counter("zipload.errors").Inc()
		if cr.firstErr == "" {
			cr.firstErr = fmt.Sprintf(format, args...)
		}
	}
	comp, _, err := postWithRetry(httpc, cfg, rt, hv, name, "compress", body, cr, rng)
	if err != nil {
		fail("compress %s: %v", name, err)
		return
	}
	if !cfg.Verify {
		return
	}
	// The decompress verify routes by its own body (the compressed
	// bytes), so in a cluster it usually lands on a different instance
	// than the compress did — cross-instance verification for free.
	back, tp, err := postWithRetry(httpc, cfg, rt, hv, name, "decompress", comp, cr, rng)
	if err != nil {
		fail("decompress %s: %v", name, err)
		return
	}
	if !bytes.Equal(back, body) {
		// Echo the server's traceparent so a verification failure can be
		// joined against the server's span tree and access log.
		fail("round trip %s: sent %d bytes, got %d back%s", name, len(body), len(back), traceSuffix(tp))
	}
}

// traceSuffix renders the server-echoed traceparent for error messages
// ("" when the server ran without tracing).
func traceSuffix(tp string) string {
	if tp == "" {
		return ""
	}
	return " [traceparent " + tp + "]"
}

// postWithRetry wraps timedPost with the degraded-mode request loop:
// health-checked failover across the ring owners, optional hedging, and
// the transient-failure retry with exponential backoff RetryBase·2^attempt
// plus seeded jitter — raised to an honored Retry-After floor when the
// server shed the request, capped at RetryMax either way. Only errors
// that say nothing about the request itself retry (5xx, connection
// resets); client errors surface immediately — retrying a 4xx is load,
// not resilience.
func postWithRetry(httpc *http.Client, cfg loadConfig, rt *ring, hv *healthView, name, op string, body []byte, cr *clientResult, rng *rand.Rand) ([]byte, string, error) {
	owners := rt.owners(name, body)
	for attempt := 0; ; attempt++ {
		// Route to the first ring owner the client's health view trusts;
		// walking past the primary is a failover. All owners down falls
		// back to the primary (someone has to take the probe traffic).
		idx := owners[0]
		if hv != nil {
			for j, o := range owners {
				if hv.up(o) {
					idx = o
					if j > 0 {
						cr.reg.Counter("zipload.failovers").Inc()
					}
					break
				}
			}
		}
		if len(rt.urls) > 1 {
			cr.reg.Counter("zipload.route." + strconv.Itoa(idx)).Inc()
		}
		// Hedge target: the next distinct owner, budget permitting.
		hedgeIdx := -1
		if cfg.Hedge > 0 && cr.hedgesLeft > 0 {
			for _, o := range owners {
				if o != idx {
					hedgeIdx = o
					break
				}
			}
		}
		out, tp, transient, retryAfter, err := timedPost(httpc, cfg, rt, hv, name, op, body, cr, idx, hedgeIdx)
		if err == nil || !transient || attempt >= cfg.Retries {
			return out, tp, err
		}
		cr.reg.Counter("zipload.retries").Inc()
		backoff := cfg.RetryBase << uint(attempt)
		if retryAfter > 0 {
			if ra := time.Duration(retryAfter) * time.Second; ra > backoff {
				backoff = ra
			}
		}
		if cfg.RetryMax > 0 && backoff > cfg.RetryMax {
			backoff = cfg.RetryMax
		}
		if cfg.RetryBase > 0 {
			backoff += time.Duration(rng.Int63n(int64(cfg.RetryBase)))
		}
		time.Sleep(backoff)
	}
}

// timedPost issues one (possibly hedged) POST, counting every launched
// attempt as a request and observing the kept outcome's latency into the
// client registry (globally and per codec, so the report can break
// quantiles down by codec). All accounting — including the per-instance
// connfail/httperr breakdown and health-view feedback — happens here in
// the client goroutine; the racing attempts themselves are side-effect
// free. transient reports whether a failure is worth retrying (connection
// error or 5xx); retryAfter carries a shed response's Retry-After
// seconds. tp is the traceparent the server echoed ("" when tracing is
// off server-side).
func timedPost(httpc *http.Client, cfg loadConfig, rt *ring, hv *healthView, name, op string, body []byte, cr *clientResult, idx, hedgeIdx int) (out []byte, tp string, transient bool, retryAfter int, err error) {
	launched := func() {
		cr.requests++
		cr.reg.Counter("zipload.requests").Inc()
		cr.reg.Counter("zipload.codec." + name + "." + op).Inc()
	}
	launched()
	var win postOutcome
	if hedgeIdx >= 0 {
		var hedged bool
		var loser *postOutcome
		win, hedged, loser = hedgedRace(httpc, cfg.Hedge, rt.urls, name, op, body, idx, hedgeIdx)
		if hedged {
			launched()
			cr.hedgesLeft--
			cr.reg.Counter("zipload.hedges").Inc()
			if win.err == nil && win.idx == hedgeIdx {
				cr.reg.Counter("zipload.hedge_wins").Inc()
			}
		}
		if loser != nil {
			// A loser that demonstrably failed (not canceled) counts
			// against its instance like any solo transport failure.
			cr.reg.Counter("zipload.connfail." + strconv.Itoa(loser.idx)).Inc()
			hv.failure(loser.idx)
		}
	} else {
		win = postOnce(httpc, context.Background(), rt.urls[idx], name, op, body)
		win.idx = idx
	}
	if win.err != nil {
		cr.reg.Counter("zipload.connfail." + strconv.Itoa(win.idx)).Inc()
		hv.failure(win.idx)
		return nil, "", true, 0, win.err
	}
	hv.success(win.idx)
	tp = win.tp
	latUS := win.elapsed.Microseconds()
	cr.reg.Histogram("zipload.latency_us").Observe(latUS)
	cr.reg.Histogram("zipload.latency_us." + name).Observe(latUS)
	if win.status != http.StatusOK {
		cr.reg.Counter("zipload.httperr." + strconv.Itoa(win.idx)).Inc()
		if win.status == http.StatusServiceUnavailable && win.retryAfter > 0 {
			cr.reg.Counter("zipload.shed_seen").Inc()
		}
		return nil, tp, win.status >= 500, win.retryAfter,
			fmt.Errorf("status %d: %s%s", win.status, firstLine(win.out), traceSuffix(tp))
	}
	cr.reg.Counter("zipload.bytes_in").Add(uint64(len(body)))
	cr.reg.Counter("zipload.bytes_out").Add(uint64(len(win.out)))
	if cfg.Digest {
		xorDigest(&cr.digest, win.out)
	}
	if win.cacheHit {
		cr.reg.Counter("zipload.cache_hits_seen").Inc()
	}
	return win.out, tp, false, 0, nil
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 120 {
		s = s[:120]
	}
	return s
}

// fetchMetrics reads the server's /metrics snapshot; nil on any failure
// (the report degrades gracefully).
func fetchMetrics(httpc *http.Client, base string) *obs.Snapshot {
	resp, err := httpc.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	return &snap
}

// report renders the human summary.
func (r *loadResult) report(w io.Writer, cfg loadConfig) {
	secs := r.Elapsed.Seconds()
	rps := 0.0
	if secs > 0 {
		rps = float64(r.Requests) / secs
	}
	fmt.Fprintf(w, "zipload: %d requests, %d errors in %.2fs (%.1f req/s)\n",
		r.Requests, r.Errors, secs, rps)
	fmt.Fprintf(w, "  codecs %s | clients %d | seed %d | verify %v\n",
		strings.Join(cfg.Codecs, ","), cfg.Clients, cfg.Seed, cfg.Verify)
	fmt.Fprintf(w, "  bytes: %d sent, %d received\n", r.BytesIn, r.BytesOut)
	snap := r.Registry.Snapshot()
	if retries := snap.Counters["zipload.retries"]; retries > 0 {
		fmt.Fprintf(w, "  retries: %d transient failures recovered by backoff\n", retries)
	}
	if puts := snap.Counters["zipload.pages.put"]; puts > 0 {
		fmt.Fprintf(w, "  pagestore: %d puts / %d verified gets\n",
			puts, snap.Counters["zipload.pages.get"])
	}
	if n := len(cfg.URLs); n > 1 {
		parts := make([]string, n)
		for i := range cfg.URLs {
			parts[i] = fmt.Sprintf("#%d:%d", i, snap.Counters["zipload.route."+strconv.Itoa(i)])
		}
		fmt.Fprintf(w, "  cluster: %d instances, consistent-hash routed (%s)\n", n, strings.Join(parts, " "))
		// Per-instance error breakdown, printed only for instances that
		// had any — a clean run's report is byte-identical to older builds.
		for i, u := range cfg.URLs {
			conn := snap.Counters["zipload.connfail."+strconv.Itoa(i)]
			httpe := snap.Counters["zipload.httperr."+strconv.Itoa(i)]
			if conn+httpe == 0 {
				continue
			}
			state := "recovered"
			for _, d := range r.Unreachable {
				if d == u {
					state = "STILL DOWN"
				}
			}
			fmt.Fprintf(w, "    #%d %s: %d conn failures (%s), %d http errors\n",
				i, u, conn, state, httpe)
		}
	}
	if fo, he := snap.Counters["zipload.failovers"], snap.Counters["zipload.hedges"]; fo+he > 0 {
		fmt.Fprintf(w, "  degraded mode: %d failovers, %d hedges (%d won by the hedge)\n",
			fo, he, snap.Counters["zipload.hedge_wins"])
	}
	if shed := snap.Counters["zipload.shed_seen"]; shed > 0 {
		fmt.Fprintf(w, "  shed: %d overload (503+Retry-After) responses honored in backoff\n", shed)
	}
	if r.ServerSnap != nil {
		hits := r.ServerSnap.Counters["server.cache.hits"]
		misses := r.ServerSnap.Counters["server.cache.misses"]
		rate := 0.0
		if hits+misses > 0 {
			rate = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(w, "  server cache: %d hits / %d misses (%.1f%% hit rate), %d evictions\n",
			hits, misses, rate, r.ServerSnap.Counters["server.cache.evictions"])
		// Tier breakdown, present only when instances run composed
		// backends (zeros are elided — a plain LRU prints nothing here).
		for _, tier := range []string{"hot", "cold", "local", "peer"} {
			th := r.ServerSnap.Counters["server.cache."+tier+".hits"]
			tm := r.ServerSnap.Counters["server.cache."+tier+".misses"]
			if th+tm == 0 {
				continue
			}
			fmt.Fprintf(w, "    %-5s tier: %d hits / %d misses (%.1f%% hit rate)\n",
				tier, th, tm, 100*float64(th)/float64(th+tm))
		}
	} else {
		fmt.Fprintf(w, "  server cache: /metrics not available\n")
	}
	if r.Digest != "" {
		fmt.Fprintf(w, "  response digest: %s\n", r.Digest)
	}
	if h, ok := snap.Histograms["zipload.latency_us"]; ok && h.Count > 0 {
		q := h.Quantiles(0.5, 0.95, 0.99)
		fmt.Fprintf(w, "  latency: n=%d mean=%.0fus p50=%.0fus p95=%.0fus p99=%.0fus min=%dus max=%dus\n",
			h.Count, float64(h.Sum)/float64(h.Count), q[0], q[1], q[2], h.Min, h.Max)
		fmt.Fprintf(w, "  latency histogram (us): %s\n", bucketLine(h))
		for _, name := range cfg.Codecs {
			hc, ok := snap.Histograms["zipload.latency_us."+name]
			if !ok || hc.Count == 0 {
				continue
			}
			qc := hc.Quantiles(0.5, 0.95, 0.99)
			fmt.Fprintf(w, "    %-6s n=%d mean=%.0fus p50=%.0fus p95=%.0fus p99=%.0fus\n",
				name, hc.Count, float64(hc.Sum)/float64(hc.Count), qc[0], qc[1], qc[2])
		}
	}
}

// bucketLine renders a histogram snapshot's non-empty buckets in ascending
// bound order as "lo:count" pairs.
func bucketLine(h obs.HistogramSnapshot) string {
	bounds := make([]uint64, 0, len(h.Buckets))
	for k := range h.Buckets {
		v, err := strconv.ParseUint(k, 10, 64)
		if err != nil {
			continue
		}
		bounds = append(bounds, v)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	parts := make([]string, len(bounds))
	for i, b := range bounds {
		parts[i] = fmt.Sprintf("%d:%d", b, h.Buckets[strconv.FormatUint(b, 10)])
	}
	return strings.Join(parts, " ")
}
