package main

// Cluster-mode support for zipload: a consistent-hash router over N
// zipserverd instances, plus the order-insensitive response digest that
// `make bench-cluster` uses to prove a tiered, peered cluster serves
// byte-for-byte the same responses as a single-LRU baseline. Routing is
// a pure function of the request (codec name + body), so it never
// consumes a client's RNG stream — the request sequence is identical
// whether it lands on 1 instance or 10.

import (
	"crypto/sha256"
	"hash/fnv"
	"sort"
	"strconv"
)

// ringVnodes is the number of virtual nodes each instance contributes to
// the hash ring. 64 keeps the max/min key-share imbalance small for the
// 2-8 instance clusters the bench target boots, while the ring stays a
// few hundred entries — one binary search per request.
const ringVnodes = 64

// ring is a consistent-hash router: a key is owned by the first virtual
// node clockwise from its hash, so resizing the cluster by one instance
// remaps only ~1/N of the key space (mod-N routing would reshuffle
// nearly all of it, flushing every instance's cache).
type ring struct {
	urls   []string
	hashes []uint64 // sorted virtual-node positions
	owner  []int    // owner[i] = index into urls of hashes[i]
}

func newRing(urls []string) *ring {
	r := &ring{urls: urls}
	if len(urls) <= 1 {
		return r // degenerate ring: everything routes to urls[0]
	}
	type vnode struct {
		h   uint64
		idx int
	}
	vns := make([]vnode, 0, len(urls)*ringVnodes)
	for i, u := range urls {
		for v := 0; v < ringVnodes; v++ {
			vns = append(vns, vnode{fnv64str(u + "#" + strconv.Itoa(v)), i})
		}
	}
	sort.Slice(vns, func(a, b int) bool { return vns[a].h < vns[b].h })
	r.hashes = make([]uint64, len(vns))
	r.owner = make([]int, len(vns))
	for i, vn := range vns {
		r.hashes[i] = vn.h
		r.owner[i] = vn.idx
	}
	return r
}

// pick returns the owning instance index for one request. The routing
// key is (codec, body) — the same material that addresses the server
// cache — so every repeat of a hot key lands on the instance that
// already holds it.
func (r *ring) pick(name string, body []byte) int {
	if len(r.urls) <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write(body)
	pos := h.Sum64()
	i := sort.Search(len(r.hashes), func(j int) bool { return r.hashes[j] >= pos })
	if i == len(r.hashes) {
		i = 0 // wrap: past the last vnode, the first one owns it
	}
	return r.owner[i]
}

// owners returns the distinct instance indices owning the key's ring
// position and its successors, in ring order starting at the primary —
// the candidate list failover and hedging walk. owners(...)[0] is always
// pick(...), so health-blind callers and the degraded-mode path agree on
// the primary.
func (r *ring) owners(name string, body []byte) []int {
	if len(r.urls) <= 1 {
		return []int{0}
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write(body)
	pos := h.Sum64()
	i := sort.Search(len(r.hashes), func(j int) bool { return r.hashes[j] >= pos })
	out := make([]int, 0, len(r.urls))
	seen := make([]bool, len(r.urls))
	for k := 0; k < len(r.hashes) && len(out) < len(r.urls); k++ {
		o := r.owner[(i+k)%len(r.hashes)]
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

func fnv64str(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// xorDigest folds one response body's SHA-256 into an order-insensitive
// accumulator: XOR commutes, so concurrent clients can each fold locally
// and merge at the end, and two runs that received the same multiset of
// response bodies — in any order, from any number of instances — end at
// the same value. (Pairs of identical responses cancel, but they cancel
// identically in the runs being compared; any single corrupted response
// flips the digest.)
func xorDigest(acc *[sha256.Size]byte, body []byte) {
	sum := sha256.Sum256(body)
	for i := range acc {
		acc[i] ^= sum[i]
	}
}
