package main

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/server"
)

// TestRingProperties: deterministic pick, every instance owns a share of
// the key space, and growing the cluster by one instance remaps only a
// minority of keys (the consistent-hash contract; mod-N would remap most).
func TestRingProperties(t *testing.T) {
	urls3 := []string{"http://a", "http://b", "http://c"}
	r3 := newRing(urls3)

	keys := make([][]byte, 0, 1000)
	for i := 0; i < 1000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("body-%d", i)))
	}

	counts := make([]int, 3)
	for _, k := range keys {
		idx := r3.pick("lz77", k)
		if idx != r3.pick("lz77", k) {
			t.Fatal("pick is not deterministic")
		}
		counts[idx]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("instance %d owns no keys: %v", i, counts)
		}
	}

	r4 := newRing(append(append([]string{}, urls3...), "http://d"))
	moved := 0
	for _, k := range keys {
		if r3.pick("lz77", k) != r4.pick("lz77", k) {
			moved++
		}
	}
	// Ideal is 1/4 of keys moving to the new instance; allow slack for
	// vnode imbalance but fail if it approaches mod-N reshuffling.
	if moved > len(keys)/2 {
		t.Fatalf("adding one instance moved %d/%d keys — not consistent hashing", moved, len(keys))
	}

	single := newRing([]string{"http://only"})
	if got := single.pick("lzw", []byte("x")); got != 0 {
		t.Fatalf("single-instance ring picked %d", got)
	}
}

// TestXorDigestOrderInsensitive: folding the same bodies in any order
// lands on the same accumulator, and any changed body changes it.
func TestXorDigestOrderInsensitive(t *testing.T) {
	bodies := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var fwd, rev, tampered [32]byte
	for _, b := range bodies {
		xorDigest(&fwd, b)
	}
	for i := len(bodies) - 1; i >= 0; i-- {
		xorDigest(&rev, bodies[i])
	}
	if fwd != rev {
		t.Fatal("digest depends on fold order")
	}
	xorDigest(&tampered, bodies[0])
	xorDigest(&tampered, []byte("BETA"))
	xorDigest(&tampered, bodies[2])
	if fwd == tampered {
		t.Fatal("digest did not detect a changed body")
	}
}

// TestRunLoadClusterMatchesSingleBaseline is the in-process core of
// make bench-cluster: the same seeded, Zipf-skewed request stream driven
// (a) across two consistent-hash-routed instances — the second mounting
// the first's cache as a peer tier — and (b) against one plain-LRU
// instance. Zero errors on both, and the order-insensitive response
// digests must be identical: the cluster may change where bytes come
// from, never the bytes.
func TestRunLoadClusterMatchesSingleBaseline(t *testing.T) {
	sA := server.New(server.Config{Workers: 2})
	tsA := httptest.NewServer(sA)
	defer tsA.Close()

	// Instance B: in-memory hot tier over a peer tier fronting A.
	regB := obs.NewRegistry()
	hot := server.NewLRUBackend(1<<20, regB, "server.cache.hot")
	peer := server.NewPeerBackend(tsA.URL, server.DefaultPeerTimeout, regB, "server.cache.peer", nil)
	cacheB := server.NewTiered(hot, peer, regB, "server.cache")
	sB := server.New(server.Config{Workers: 2, Registry: regB, Cache: cacheB, PeerView: hot})
	tsB := httptest.NewServer(sB)
	defer tsB.Close()

	base := loadConfig{
		Clients:  2,
		Requests: 10,
		Codecs:   []string{"lz77", "lzw"},
		Seed:     5,
		Verify:   true,
		BodyCap:  1024,
		ZipfS:    1.3,
		Digest:   true,
	}

	cluster := base
	cluster.BaseURL = tsA.URL
	cluster.URLs = []string{tsA.URL, tsB.URL}
	resC, err := runLoad(cluster)
	if err != nil {
		t.Fatal(err)
	}
	if resC.Errors != 0 {
		t.Fatalf("cluster run: %d errors (first: %s)", resC.Errors, resC.FirstError)
	}
	if len(resC.Digest) != 64 {
		t.Fatalf("cluster digest %q is not 64 hex chars", resC.Digest)
	}
	// Both instances must have received traffic for the comparison to
	// mean anything.
	snap := resC.Registry.Snapshot()
	for i := range cluster.URLs {
		if snap.Counters[fmt.Sprintf("zipload.route.%d", i)] == 0 {
			t.Fatalf("instance %d received no requests", i)
		}
	}
	// The aggregated server snapshot must account for every request.
	if resC.ServerSnap == nil {
		t.Fatal("no aggregated cluster metrics")
	}
	if got := resC.ServerSnap.Counters["server.requests"]; got != resC.Requests {
		t.Fatalf("cluster-wide server.requests = %d, clients sent %d", got, resC.Requests)
	}

	var sb strings.Builder
	resC.report(&sb, cluster)
	out := sb.String()
	for _, want := range []string{"cluster: 2 instances", "response digest:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cluster report missing %q:\n%s", want, out)
		}
	}

	// Baseline: same stream, one plain-LRU instance.
	sS := server.New(server.Config{Workers: 2})
	tsS := httptest.NewServer(sS)
	defer tsS.Close()
	single := base
	single.BaseURL = tsS.URL
	resS, err := runLoad(single)
	if err != nil {
		t.Fatal(err)
	}
	if resS.Errors != 0 {
		t.Fatalf("baseline run: %d errors (first: %s)", resS.Errors, resS.FirstError)
	}
	if resS.Digest != resC.Digest {
		t.Fatalf("cluster digest %s != single-instance digest %s — the topology changed response bytes",
			resC.Digest, resS.Digest)
	}
}

// TestRunLoadRejectsBadZipf: the skew parameter is validated up front
// (rand.NewZipf silently misbehaves at s <= 1).
func TestRunLoadRejectsBadZipf(t *testing.T) {
	_, err := runLoad(loadConfig{BaseURL: "http://127.0.0.1:1", Codecs: []string{"lz77"}, ZipfS: 0.5})
	if err == nil || !strings.Contains(err.Error(), "zipf") {
		t.Fatalf("want zipf validation error, got %v", err)
	}
}
