package main

// Degraded-mode support for zipload's cluster routing (DESIGN.md §13):
// per-client instance health tracking with failover to the next distinct
// ring owner, plus optional hedged requests. All of it is inert on a
// healthy cluster — the health view only redirects after real transport
// failures, hedging is off unless -hedge is set, and neither consumes the
// client's seeded RNG stream — so baseline runs stay byte-identical to a
// build without this file.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Health-view tuning: like the server-side breakers these count requests,
// not wall-clock, so a replayed request sequence makes identical routing
// decisions.
const (
	// healthFailThreshold is how many consecutive transport failures mark
	// an instance down in a client's view.
	healthFailThreshold = 3
	// healthDownPicks is how many routing consults skip a down instance
	// before the next consult probes it again.
	healthDownPicks = 64
)

// healthView is one client's private, request-counted view of instance
// liveness. Private per client keeps it lock-free and deterministic per
// stream; the cost is each client discovering an outage independently
// (healthFailThreshold failed requests each, bounded and tiny).
type healthView struct {
	fails []int // consecutive transport failures per instance
	down  []int // routing consults left before re-probing
}

func newHealthView(n int) *healthView {
	return &healthView{fails: make([]int, n), down: make([]int, n)}
}

// up reports whether the client should route to instance idx, counting
// down the probation window as it is consulted. After healthDownPicks
// consults the instance is offered again — the probe; one more transport
// failure re-downs it immediately.
func (h *healthView) up(idx int) bool {
	if h == nil {
		return true
	}
	if h.down[idx] > 0 {
		h.down[idx]--
		return false
	}
	return true
}

// failure records one transport failure against idx.
func (h *healthView) failure(idx int) {
	if h == nil {
		return
	}
	h.fails[idx]++
	if h.fails[idx] >= healthFailThreshold {
		h.down[idx] = healthDownPicks
		// Keep the count at the threshold: a failed probe after the window
		// re-downs on its first failure instead of needing three more.
		h.fails[idx] = healthFailThreshold
	}
}

// success marks idx healthy (closing any probation).
func (h *healthView) success(idx int) {
	if h == nil {
		return
	}
	h.fails[idx] = 0
	h.down[idx] = 0
}

// postOutcome is one HTTP attempt's result. postOnce fills it without
// touching any shared state, so attempts can race as hedges; the client
// goroutine does all accounting on whichever outcome it keeps.
type postOutcome struct {
	idx        int // instance index the attempt targeted
	out        []byte
	tp         string // server-echoed traceparent
	status     int    // 0 on transport error
	retryAfter int    // parsed Retry-After seconds (0 when absent)
	cacheHit   bool
	elapsed    time.Duration
	err        error // transport/read error (nil once the server answered)
}

// postOnce issues one POST /v1/{name}/{op} with no side effects beyond
// the request itself. ctx cancellation (a hedge losing the race) surfaces
// as err; callers must not account canceled losers as instance failures.
func postOnce(httpc *http.Client, ctx context.Context, base, name, op string, body []byte) postOutcome {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/"+name+"/"+op, bytes.NewReader(body))
	if err != nil {
		return postOutcome{err: err}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := httpc.Do(req)
	if err != nil {
		return postOutcome{elapsed: time.Since(start), err: err}
	}
	oc := postOutcome{
		tp:       resp.Header.Get("Traceparent"),
		status:   resp.StatusCode,
		cacheHit: resp.Header.Get("X-Cache") == "HIT",
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
		oc.retryAfter = ra
	}
	oc.out, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	oc.elapsed = time.Since(start)
	if err != nil {
		return postOutcome{elapsed: oc.elapsed, err: err}
	}
	return oc
}

// hedgedRace runs the primary attempt and, if it has not completed within
// cfg.Hedge, a second identical attempt against hedgeIdx. First completed
// server answer (any status — the server answered) wins and the loser is
// canceled; responses are content-addressed, so the duplicate request is
// dedup-safe by construction. loser is the non-winning outcome when it
// FAILED before the winner finished (known failure worth counting against
// its instance health); canceled losers are never reported.
func hedgedRace(httpc *http.Client, hedgeAfter time.Duration, urls []string,
	name, op string, body []byte, idx, hedgeIdx int) (win postOutcome, hedged bool, loser *postOutcome) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := make(chan postOutcome, 2)
	launch := func(i int) {
		go func() {
			oc := postOnce(httpc, ctx, urls[i], name, op, body)
			oc.idx = i
			ch <- oc
		}()
	}
	launch(idx)
	timer := time.NewTimer(hedgeAfter)
	defer timer.Stop()
	outstanding := 1
	var firstFail *postOutcome
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				outstanding++
				launch(hedgeIdx)
			}
		case oc := <-ch:
			outstanding--
			if oc.err == nil {
				return oc, hedged, firstFail
			}
			fail := oc
			if firstFail == nil {
				firstFail = &fail
				// A fast transport failure is a better hedge trigger than
				// the timer: fire the backup immediately.
				if !hedged {
					hedged = true
					outstanding++
					launch(hedgeIdx)
				}
				continue
			}
			if outstanding == 0 {
				// Both attempts failed: the first failure is the primary
				// result, the second is the counted loser.
				return *firstFail, hedged, &fail
			}
		}
	}
}

// unreachableError classifies a run whose problem is instance liveness
// rather than payload correctness: a -urls instance refused connections
// (and, when set after the run, still fails its health probe). main maps
// it to exit code 3, so scripts can tell "instance down" from
// "verification failed" (exit 1).
type unreachableError struct {
	addrs    []string
	errs     uint64
	requests uint64
	first    string
}

func (e *unreachableError) Error() string {
	msg := fmt.Sprintf("unreachable instances: %s", strings.Join(e.addrs, ", "))
	switch {
	case e.errs > 0:
		msg += fmt.Sprintf(" (%d of %d requests failed", e.errs, e.requests)
		if e.first != "" {
			msg += "; first: " + e.first
		}
		msg += ")"
	case e.first != "":
		msg += " (" + e.first + ")"
	}
	return msg
}
