package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/pagestore"
	"github.com/zipchannel/zipchannel/internal/server"
)

func pageServer(t *testing.T, freg *fault.Registry) *httptest.Server {
	t.Helper()
	ps := pagestore.New(pagestore.Config{PageSize: 4096, Faults: freg})
	ts := httptest.NewServer(server.New(server.Config{Workers: 4, PageStore: ps, Faults: freg}))
	t.Cleanup(ts.Close)
	return ts
}

// TestPageTrafficRoundTrips drives an all-pages load and requires every
// PUT+GET pair to verify.
func TestPageTrafficRoundTrips(t *testing.T) {
	ts := pageServer(t, nil)
	res, err := runLoad(loadConfig{
		BaseURL:  ts.URL,
		Clients:  4,
		Requests: 6,
		Codecs:   []string{"lz77"},
		Seed:     1,
		PageFrac: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors (first: %s)", res.Errors, res.FirstError)
	}
	snap := res.Registry.Snapshot()
	if snap.Counters["zipload.pages.put"] == 0 || snap.Counters["zipload.pages.get"] == 0 {
		t.Fatalf("page counters empty: %v", snap.Counters)
	}
	var sb strings.Builder
	res.report(&sb, loadConfig{Codecs: []string{"lz77"}, PageFrac: 1})
	if !strings.Contains(sb.String(), "pagestore:") {
		t.Fatalf("report missing pagestore line:\n%s", sb.String())
	}
}

// TestPageFlagOffIsByteIdenticalBaseline is the bench-cluster guarantee:
// with -pagestore 0, the request stream and the response digest are
// identical whether or not the target servers mount a page store — so a
// page-capable cluster can be benchmarked against old baselines.
func TestPageFlagOffIsByteIdenticalBaseline(t *testing.T) {
	withPages := pageServer(t, nil)
	withoutPages := httptest.NewServer(server.New(server.Config{Workers: 4}))
	t.Cleanup(withoutPages.Close)

	run := func(url string) string {
		res, err := runLoad(loadConfig{
			BaseURL:  url,
			Digest:   true,
			Clients:  2,
			Requests: 8,
			Codecs:   []string{"lz77", "lzw"},
			Seed:     7,
			Verify:   true,
			BodyCap:  1024,
			// PageFrac deliberately zero.
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("%d errors (first: %s)", res.Errors, res.FirstError)
		}
		if res.Registry.Snapshot().Counters["zipload.pages.put"] != 0 {
			t.Fatal("page traffic generated with the flag off")
		}
		return res.Digest
	}
	a, b := run(withPages.URL), run(withoutPages.URL)
	if a == "" || a != b {
		t.Fatalf("flag-off digests diverged: pagestore server %s vs plain server %s", a, b)
	}
}

// TestPageTrafficRecoversFromTransientCorruption arms an every-3rd load
// corruption: GETs see 500s, the retry loop re-reads (the stored copy is
// intact), and the run still finishes error-free.
func TestPageTrafficRecoversFromTransientCorruption(t *testing.T) {
	freg := fault.NewRegistry(3)
	freg.Arm("pagestore.load", fault.Spec{Kind: fault.KindCorrupt, Every: 3})
	ts := pageServer(t, freg)
	res, err := runLoad(loadConfig{
		BaseURL:  ts.URL,
		Clients:  2,
		Requests: 9,
		Codecs:   []string{"lz77"},
		Seed:     2,
		PageFrac: 1,
		Retries:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("corruption not healed by retries: %d errors (first: %s)", res.Errors, res.FirstError)
	}
	if res.Registry.Snapshot().Counters["zipload.retries"] == 0 {
		t.Fatal("every-3rd corrupt armed but no retry happened")
	}
}
