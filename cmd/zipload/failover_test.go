package main

// Degraded-mode tests: ring owner enumeration, the per-client health
// view, hedged racing, failover around an instance that dies mid-run, and
// Retry-After honoring on shed responses.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/server"
)

// TestRingOwners: owners agrees with pick on the primary, lists every
// instance exactly once, and is deterministic.
func TestRingOwners(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	rt := newRing(urls)
	for i := 0; i < 50; i++ {
		body := []byte(fmt.Sprintf("owner body %d", i))
		owners := rt.owners("lz77", body)
		if len(owners) != len(urls) {
			t.Fatalf("owners listed %d of %d instances", len(owners), len(urls))
		}
		if owners[0] != rt.pick("lz77", body) {
			t.Fatalf("owners[0]=%d disagrees with pick=%d", owners[0], rt.pick("lz77", body))
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("instance %d listed twice", o)
			}
			seen[o] = true
		}
		again := rt.owners("lz77", body)
		for j := range owners {
			if owners[j] != again[j] {
				t.Fatal("owners not deterministic")
			}
		}
	}
	// Degenerate single-instance ring.
	if got := newRing([]string{"http://only"}).owners("lz77", []byte("x")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-instance owners = %v", got)
	}
}

// TestHealthViewProbation: threshold failures mark an instance down for
// healthDownPicks consults, a probe failure re-downs immediately, and a
// success clears everything.
func TestHealthViewProbation(t *testing.T) {
	hv := newHealthView(2)
	for i := 0; i < healthFailThreshold; i++ {
		if !hv.up(0) {
			t.Fatalf("instance down after only %d failures", i)
		}
		hv.failure(0)
	}
	for i := 0; i < healthDownPicks; i++ {
		if hv.up(0) {
			t.Fatalf("instance up during probation (consult %d)", i)
		}
		if !hv.up(1) {
			t.Fatal("healthy instance affected by peer's probation")
		}
	}
	if !hv.up(0) {
		t.Fatal("probe not offered after the probation window")
	}
	hv.failure(0) // failed probe: re-down on the first failure
	if hv.up(0) {
		t.Fatal("failed probe did not re-down the instance")
	}
	for i := 1; i < healthDownPicks; i++ {
		hv.up(0)
	}
	if !hv.up(0) {
		t.Fatal("second probe not offered")
	}
	hv.success(0)
	if !hv.up(0) || hv.fails[0] != 0 {
		t.Fatal("success did not clear probation state")
	}
}

// TestHedgedRaceWinner: a slow primary loses the race to the hedge; the
// canceled primary is never reported as a failed loser.
func TestHedgedRaceWinner(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		w.Write([]byte("slow"))
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fast"))
	}))
	defer fast.Close()

	httpc := &http.Client{}
	win, hedged, loser := hedgedRace(httpc, 20*time.Millisecond,
		[]string{slow.URL, fast.URL}, "lz77", "compress", []byte("body"), 0, 1)
	if !hedged {
		t.Fatal("hedge never fired against a 300ms primary")
	}
	if win.err != nil || win.idx != 1 || string(win.out) != "fast" {
		t.Fatalf("winner = idx %d err %v out %q, want the hedge", win.idx, win.err, win.out)
	}
	if loser != nil {
		t.Fatalf("canceled primary reported as failed loser: %+v", loser)
	}
}

// TestHedgedRaceFastFailure: a primary that refuses connections triggers
// the hedge immediately (before the timer) and is counted as the loser.
func TestHedgedRaceFastFailure(t *testing.T) {
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("alive"))
	}))
	defer fast.Close()

	httpc := &http.Client{}
	win, hedged, loser := hedgedRace(httpc, 10*time.Second, // timer would never fire
		[]string{"http://127.0.0.1:1", fast.URL}, "lz77", "compress", []byte("body"), 0, 1)
	if !hedged {
		t.Fatal("fast transport failure did not trigger the hedge")
	}
	if win.err != nil || win.idx != 1 {
		t.Fatalf("winner = idx %d err %v, want the hedge", win.idx, win.err)
	}
	if loser == nil || loser.idx != 0 || loser.err == nil {
		t.Fatalf("dead primary not reported as failed loser: %+v", loser)
	}
}

// startInstance boots a real zipserverd core for cluster tests.
func startInstance(t *testing.T) *httptest.Server {
	t.Helper()
	s := server.New(server.Config{
		Registry: obs.NewRegistry(),
		Faults:   fault.NewRegistry(1),
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// TestRunLoadFailsOverAroundMidRunDeath: two-instance cluster, one dies
// mid-run. The load must finish with zero errors (failover + retries
// carry it), count failovers, and classify the dead instance as
// unreachable for the exit-code path.
func TestRunLoadFailsOverAroundMidRunDeath(t *testing.T) {
	a := startInstance(t)

	// Instance B dies after serving 20 codec requests — request-driven so
	// the load is demonstrably underway (and the pre-run health check long
	// past) when it goes, however slow the build (-race) is.
	core := server.New(server.Config{
		Registry: obs.NewRegistry(),
		Faults:   fault.NewRegistry(1),
	})
	var served atomic.Int64
	var dead sync.Once
	var b *httptest.Server
	b = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") && served.Add(1) == 20 {
			go dead.Do(func() {
				b.CloseClientConnections()
				b.Close()
			})
		}
		core.ServeHTTP(w, r)
	}))
	t.Cleanup(b.Close)
	res, err := runLoad(loadConfig{
		URLs:      []string{a.URL, b.URL},
		Clients:   4,
		Duration:  600 * time.Millisecond,
		Codecs:    []string{"lz77"},
		Seed:      7,
		Verify:    true,
		BodyCap:   512,
		Retries:   6,
		RetryBase: time.Millisecond,
		RetryMax:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d errors despite failover (first: %s)", res.Errors, res.FirstError)
	}
	snap := res.Registry.Snapshot()
	if snap.Counters["zipload.failovers"] == 0 {
		t.Fatal("no failovers counted around a dead instance")
	}
	if len(res.Unreachable) != 1 || res.Unreachable[0] != b.URL {
		t.Fatalf("Unreachable = %v, want [%s]", res.Unreachable, b.URL)
	}
}

// TestRetryAfterHonored: a shed (503 + Retry-After: 1) response stretches
// the next backoff to at least the advertised second, then the retry
// succeeds.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded (queue full), retry later", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("recovered"))
	}))
	defer ts.Close()

	start := time.Now()
	res, err := runLoad(loadConfig{
		BaseURL:   ts.URL,
		Clients:   1,
		Requests:  1,
		Codecs:    []string{"lz77"},
		Seed:      3,
		Verify:    false,
		BodyCap:   64,
		Retries:   2,
		RetryBase: time.Millisecond,
		RetryMax:  5 * time.Second,
	})
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors, want recovery after the honored Retry-After", res.Errors)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("run finished in %v — Retry-After: 1 not honored as a backoff floor", elapsed)
	}
	if got := res.Registry.Snapshot().Counters["zipload.shed_seen"]; got != 1 {
		t.Fatalf("shed_seen = %d, want 1", got)
	}
}

// TestRetryAfterCapped: RetryMax caps an absurd Retry-After so a
// misbehaving server cannot stall the client.
func TestRetryAfterCapped(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("recovered"))
	}))
	defer ts.Close()

	start := time.Now()
	res, err := runLoad(loadConfig{
		BaseURL:   ts.URL,
		Clients:   1,
		Requests:  1,
		Codecs:    []string{"lz77"},
		Seed:      3,
		Verify:    false,
		BodyCap:   64,
		Retries:   2,
		RetryBase: time.Millisecond,
		RetryMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("run took %v — RetryMax did not cap the Retry-After", elapsed)
	}
}

// TestUnreachableErrorMessage pins the exit-3 classification text.
func TestUnreachableErrorMessage(t *testing.T) {
	e := &unreachableError{addrs: []string{"http://a:1"}, errs: 2, requests: 10, first: "boom"}
	msg := e.Error()
	for _, want := range []string{"unreachable instances", "http://a:1", "2 of 10", "boom"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}
