package main

// Page-store traffic for zipload: with -pagestore > 0, that fraction of
// each client's iterations exercises PUT/GET /v1/pages/{id} against a
// zipserverd started with -pagestore, verifying every read round-trip.
//
// The feature is strictly opt-in at the byte level: page traffic draws
// from its own RNG stream (split separately from the codec stream), page
// ids are routed and folded into the -digest accumulator only when the
// flag is set, and a run with -pagestore 0 draws nothing from the page
// stream at all — so `make bench-cluster` baselines against servers
// with or without a mounted page store stay byte-identical.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// onePageRequest performs one PUT + verifying GET exchange against the
// page store. Page ids are namespaced per client (c{i}-p{n}) so exact-
// byte verification never races another client's overwrite; in a
// cluster, the id routes through the consistent-hash ring like a codec
// body would, pinning each page to one instance.
func onePageRequest(httpc *http.Client, cfg loadConfig, rt *ring, client int, cr *clientResult, rng *rand.Rand) {
	fail := func(format string, args ...any) {
		cr.errors++
		cr.reg.Counter("zipload.errors").Inc()
		if cr.firstErr == "" {
			cr.firstErr = fmt.Sprintf(format, args...)
		}
	}
	id := fmt.Sprintf("c%d-p%d", client, rng.Intn(cfg.PageIDs))
	body := pageBody(cfg, rng)
	base := rt.urls[rt.pick("pages", []byte(id))]

	if err := pageExchange(httpc, cfg, cr, rng, http.MethodPut, base, id, body, nil); err != nil {
		fail("page put %s: %v", id, err)
		return
	}
	var got []byte
	if err := pageExchange(httpc, cfg, cr, rng, http.MethodGet, base, id, nil, &got); err != nil {
		fail("page get %s: %v", id, err)
		return
	}
	// A page read returns the full (or attacker-region) page: the written
	// prefix must match, the tail is zero padding.
	if len(got) < len(body) || !bytes.Equal(got[:len(body)], body) {
		fail("page round trip %s: wrote %d bytes, read %d back with mismatch", id, len(body), len(got))
	}
}

// pageBody draws a deterministic page payload from the corpus pool,
// capped to the configured page size.
func pageBody(cfg loadConfig, rng *rand.Rand) []byte {
	data := cfg.pagePool[rng.Intn(len(cfg.pagePool))]
	if len(data) > cfg.PageBytes {
		data = data[:cfg.PageBytes]
	}
	return data
}

// pageExchange issues one page PUT or GET with the same transient-retry
// contract as the codec path: 5xx and connection errors retry with
// seeded backoff (a transient load corruption heals on re-read — the
// pagestore chaos semantics), 4xx surface immediately.
func pageExchange(httpc *http.Client, cfg loadConfig, cr *clientResult, rng *rand.Rand,
	method, base, id string, body []byte, out *[]byte) error {
	op := "get"
	if method == http.MethodPut {
		op = "put"
	}
	for attempt := 0; ; attempt++ {
		cr.requests++
		cr.reg.Counter("zipload.requests").Inc()
		cr.reg.Counter("zipload.pages." + op).Inc()
		start := time.Now()
		req, err := http.NewRequest(method, base+"/v1/pages/"+id, bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp, err := httpc.Do(req)
		var respBody []byte
		transient := true
		if err == nil {
			respBody, err = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		if err == nil {
			cr.reg.Histogram("zipload.latency_us").Observe(time.Since(start).Microseconds())
			switch {
			case resp.StatusCode == http.StatusOK:
				cr.reg.Counter("zipload.bytes_in").Add(uint64(len(body)))
				cr.reg.Counter("zipload.bytes_out").Add(uint64(len(respBody)))
				if out != nil {
					*out = respBody
					if cfg.Digest {
						xorDigest(&cr.digest, respBody)
					}
				}
				return nil
			default:
				transient = resp.StatusCode >= 500
				err = fmt.Errorf("status %d: %s", resp.StatusCode, firstLine(respBody))
			}
		}
		if !transient || attempt >= cfg.Retries {
			return err
		}
		cr.reg.Counter("zipload.retries").Inc()
		backoff := cfg.RetryBase << uint(attempt)
		if cfg.RetryBase > 0 {
			backoff += time.Duration(rng.Int63n(int64(cfg.RetryBase)))
		}
		time.Sleep(backoff)
	}
}
