// Command promcheck validates Prometheus text exposition (format 0.0.4, as
// produced by zipserverd's GET /metrics?format=prom) with the repository's
// own minimal parser (internal/obs.ParseExposition): metric and label name
// charsets, label-value escaping, TYPE declarations, cumulative histogram
// bucket invariants, and exemplar syntax.
//
// Usage:
//
//	promcheck -url http://127.0.0.1:8321/metrics?format=prom
//	promcheck exposition.txt
//	curl -s '.../metrics?format=prom' | promcheck
//
// -require asserts named series are present (comma-separated), so CI can
// check both "the output parses" and "the metrics we alert on exist". Exit
// status is non-zero on any parse or requirement failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"github.com/zipchannel/zipchannel/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url     = flag.String("url", "", "fetch the exposition from this URL instead of a file/stdin")
		require = flag.String("require", "", "comma-separated series names that must be present")
	)
	flag.Parse()

	in, name, err := openInput(*url, flag.Args())
	if err != nil {
		return err
	}
	defer in.Close()

	samples, err := obs.ParseExposition(in)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}

	have := map[string]bool{}
	for _, s := range samples {
		have[s.Name] = true
	}
	var missing []string
	for _, want := range strings.Split(*require, ",") {
		want = strings.TrimSpace(want)
		if want != "" && !have[want] {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: valid exposition but missing required series: %s",
			name, strings.Join(missing, ", "))
	}
	fmt.Printf("promcheck: %s OK (%d samples, %d series)\n", name, len(samples), len(have))
	return nil
}

// openInput resolves the one input source: -url, a single file argument,
// or stdin.
func openInput(url string, args []string) (io.ReadCloser, string, error) {
	switch {
	case url != "":
		if len(args) > 0 {
			return nil, "", fmt.Errorf("-url and file arguments are mutually exclusive")
		}
		resp, err := http.Get(url)
		if err != nil {
			return nil, "", err
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			resp.Body.Close()
			return nil, "", fmt.Errorf("%s: status %d: %s", url, resp.StatusCode,
				strings.TrimSpace(string(body)))
		}
		return resp.Body, url, nil
	case len(args) == 1:
		f, err := os.Open(args[0])
		if err != nil {
			return nil, "", err
		}
		return f, args[0], nil
	case len(args) == 0:
		return io.NopCloser(os.Stdin), "stdin", nil
	default:
		return nil, "", fmt.Errorf("at most one input file (got %d)", len(args))
	}
}
