package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/pagestore"
	"github.com/zipchannel/zipchannel/internal/server"
	"github.com/zipchannel/zipchannel/internal/zipchannel"
)

// plantServer boots the same server shape `zipserverd -pagestore
// -pagestore-plant victim=64:key=<secret>` serves, in process.
func plantServer(t *testing.T, secret string) *httptest.Server {
	t.Helper()
	ps := pagestore.New(pagestore.Config{})
	if _, err := ps.Plant("victim", 64, []byte("key="+secret)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(server.Config{PageStore: ps}))
	t.Cleanup(ts.Close)
	return ts
}

// TestRemoteRecoveryEndToEnd runs the whole chain — HTTP oracle, header
// parse, byte-by-byte recovery — against a live server and checks the
// exact planted secret comes back out of the text report.
func TestRemoteRecoveryEndToEnd(t *testing.T) {
	const secret = "HUNTER2SECRET000"
	ts := plantServer(t, secret)
	var out bytes.Buffer
	err := run(&out, []string{"-server", ts.URL, "-len", "16"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "key="+secret) {
		t.Fatalf("report did not recover the secret:\n%s", out.String())
	}
}

// TestRemoteRecoveryUnderTimerNoise is the remote acceptance run: the
// attacker's own timer is jittered (25%, ±2000 steps) and the recovery
// still lands every byte via median filtering.
func TestRemoteRecoveryUnderTimerNoise(t *testing.T) {
	const secret = "JITTERPROOFKEY42"
	ts := plantServer(t, secret)
	freg := fault.NewRegistry(42)
	if err := freg.ArmAll("attacker.oracle.timer=latency:0.25:2000"); err != nil {
		t.Fatal(err)
	}
	oracle := &httpOracle{client: ts.Client(), base: ts.URL, page: "victim"}
	res, err := zipchannel.RecoverPageSecret(oracle, zipchannel.PageAttackConfig{
		KnownPrefix:  "key=",
		SecretLen:    16,
		Faults:       freg,
		TimerSamples: 27,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoisyReads == 0 {
		t.Fatal("timer noise armed but never fired")
	}
	if acc := res.Accuracy([]byte(secret)); acc <= 0.99 {
		t.Fatalf("remote recovery accuracy %.4f under jitter, want > 0.99 (got %q)", acc, res.Recovered)
	}
}

// TestOracleErrorsSurface checks a dead page id turns into a clean error,
// not a zero-length "success".
func TestOracleErrorsSurface(t *testing.T) {
	ts := plantServer(t, "HUNTER2SECRET000")
	var out bytes.Buffer
	if err := run(&out, []string{"-server", ts.URL, "-page", "nope", "-len", "4"}); err == nil {
		t.Fatal("attack against a missing page should error")
	}
}
