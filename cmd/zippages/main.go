// Command zippages runs the remote compression-time oracle attack
// against a zipserverd page store (internal/zipchannel.RecoverPageSecret
// over HTTP). The attacker's entire view of the victim is PUT
// /v1/pages/{id} on its own region of a shared page plus the
// X-Page-Steps cost header on the response — no cache probes, no reads
// of victim memory. Byte by byte, the guess whose store cost is minimal
// is the one the compressor folded into a back-reference from the
// co-located secret.
//
// Against a server started as
//
//	zipserverd -pagestore -pagestore-plant 'victim=64:key=HUNTER2SECRET000'
//
// recover the 16 planted secret bytes with
//
//	zippages -server http://127.0.0.1:8321 -page victim -prefix key= -len 16
//
// A noisy timer is simulated client-side with -timer-faults
// 'attacker.oracle.timer=latency:0.25:2000'; median filtering over
// -samples readings per query defeats it (the PR 6 amplification).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/zipchannel"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "zippages:", err)
		os.Exit(1)
	}
}

// httpOracle implements zipchannel.PageOracle against a remote
// zipserverd: the attack code is identical local and remote, only the
// transport differs.
type httpOracle struct {
	client *http.Client
	base   string
	page   string
}

// Query PUTs the guess into the attacker region and reads the store's
// cost off X-Page-Steps.
func (o *httpOracle) Query(guess []byte) (int64, error) {
	req, err := http.NewRequest(http.MethodPut,
		o.base+"/v1/pages/"+o.page, strings.NewReader(string(guess)))
	if err != nil {
		return 0, err
	}
	resp, err := o.client.Do(req)
	if err != nil {
		return 0, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("PUT %s: status %d: %s", o.page, resp.StatusCode, firstLine(body))
	}
	steps, err := strconv.ParseInt(resp.Header.Get("X-Page-Steps"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("PUT %s: bad X-Page-Steps header: %w", o.page, err)
	}
	return steps, nil
}

// AttackerLen sizes the attacker-writable region: GET returns exactly
// those bytes for a planted page.
func (o *httpOracle) AttackerLen() (int, error) {
	resp, err := o.client.Get(o.base + "/v1/pages/" + o.page)
	if err != nil {
		return 0, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET %s: status %d: %s", o.page, resp.StatusCode, firstLine(body))
	}
	return len(body), nil
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

// attackReport is the -format json output shape.
type attackReport struct {
	Recovered      string  `json:"recovered"`
	Queries        int     `json:"queries"`
	QueriesPerByte float64 `json:"queries_per_byte"`
	NoisyReads     int     `json:"noisy_reads"`
	OracleSteps    int64   `json:"oracle_steps"`
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("zippages", flag.ContinueOnError)
	var (
		server    = fs.String("server", "http://127.0.0.1:8321", "zipserverd base URL (must run with -pagestore)")
		page      = fs.String("page", "victim", "planted page id to attack")
		prefix    = fs.String("prefix", "key=", "known plaintext preceding the secret")
		secretLen = fs.Int("len", 16, "secret bytes to recover")
		charset   = fs.String("charset", zipchannel.DefaultPageCharset, "candidate alphabet")
		samples   = fs.Int("samples", 0, "timer readings per query under a noisy timer (0 = attacker default)")
		tfaults   = fs.String("timer-faults", "", "simulated attacker-side timer noise, e.g. 'attacker.oracle.timer=latency:0.25:2000'")
		fseed     = fs.Int64("fault-seed", 1, "seed for the simulated timer noise")
		format    = fs.String("format", "text", "output format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var freg *fault.Registry
	if *tfaults != "" {
		freg = fault.NewRegistry(*fseed)
		if err := freg.ArmAll(*tfaults); err != nil {
			return err
		}
	}
	reg := obs.NewRegistry()
	oracle := &httpOracle{
		client: &http.Client{},
		base:   strings.TrimRight(*server, "/"),
		page:   *page,
	}
	res, err := zipchannel.RecoverPageSecret(oracle, zipchannel.PageAttackConfig{
		KnownPrefix:  *prefix,
		SecretLen:    *secretLen,
		Charset:      *charset,
		Obs:          reg,
		Faults:       freg,
		TimerSamples: *samples,
	})
	if err != nil {
		return err
	}

	switch *format {
	case "json":
		b, err := json.MarshalIndent(attackReport{
			Recovered:      string(res.Recovered),
			Queries:        res.Queries,
			QueriesPerByte: res.QueriesPerByte(),
			NoisyReads:     res.NoisyReads,
			OracleSteps:    res.OracleSteps,
		}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(b))
	case "text":
		fmt.Fprintf(w, "zippages: recovered %d bytes from %s via %d oracle queries (%.1f/byte)\n",
			len(res.Recovered), *page, res.Queries, res.QueriesPerByte())
		if res.NoisyReads > 0 {
			fmt.Fprintf(w, "  noisy timer: %d jittered readings beaten by median-of-%d filtering\n",
				res.NoisyReads, *samples)
		}
		fmt.Fprintf(w, "  secret: %s%s\n", *prefix, res.Recovered)
	default:
		return fmt.Errorf("unknown -format %q (have text, json)", *format)
	}
	return nil
}
