// Command taintchannel runs the TaintChannel analyzer (§III) on a victim
// program — one of the built-in gadget miniatures or a .zasm assembly
// file — and prints the leakage report with Fig 2-style taint matrices.
//
// Usage:
//
//	taintchannel -victim zlib -text "attack at dawn"
//	taintchannel -victim bzip2 -random 64
//	taintchannel -file gadget.zasm -input secret.bin -track 3
//	taintchannel -victim bzip2 -random 64 -metrics m.json -trace t.ndjson
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/zipchannel/zipchannel/internal/core"
	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/taint"
	"github.com/zipchannel/zipchannel/internal/victims"
	"github.com/zipchannel/zipchannel/internal/vm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "taintchannel:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		victimName = flag.String("victim", "", "built-in victim: "+strings.Join(victimNames(), ", "))
		file       = flag.String("file", "", "assemble and analyze this .zasm file instead")
		inputFile  = flag.String("input", "", "file whose bytes are the victim's (secret) input")
		text       = flag.String("text", "", "literal input text")
		randomN    = flag.Int("random", 0, "use n random input bytes")
		seed       = flag.Int64("seed", 1, "seed for -random")
		carry      = flag.Bool("carry-aware", false, "sound carry-aware add/sub taint (ablation)")
		track      = flag.Int("track", 0, "print the propagation history of input byte #n (1-based)")
		samples    = flag.Int("samples", 2, "concrete samples kept per gadget")
		disasm     = flag.Bool("disasm", false, "print the victim's disassembly first")
		engineName = flag.String("engine", "compiled", "execution engine: compiled (threaded code) or interp (kept for differential runs)")
		pairProf   = flag.Bool("pair-profile", false, "profile dynamic opcode pairs (forces the interpreter) and print the hottest pairs")
	)
	var cli obs.CLI
	cli.Bind(flag.CommandLine)
	flag.Parse()

	prog, err := loadVictim(*victimName, *file)
	if err != nil {
		return err
	}
	input, err := loadInput(*inputFile, *text, *randomN, *seed)
	if err != nil {
		return err
	}
	if *disasm {
		fmt.Println(isa.Disassemble(prog))
	}

	eng, err := vm.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	vm.SetDefaultEngine(eng)

	machine, err := vm.NewFlat(prog)
	if err != nil {
		return err
	}
	machine.SetInput(input)
	if *pairProf {
		machine.AttachPairProfile()
	}
	reg, err := cli.Start()
	if err != nil {
		return err
	}
	defer cli.Finish()
	reg.SetSimClock(func() uint64 { return machine.Steps })
	machine.AttachObs(reg)
	cfg := core.Config{CarryAware: *carry, MaxSamplesPerGadget: *samples}
	if *track > 0 {
		cfg.TrackTags = map[taint.Tag]bool{taint.Tag(*track): true}
	}
	analyzer := core.New(cfg)
	analyzer.Attach(machine)
	fmt.Fprintf(os.Stderr, "analyzing %s on %d input bytes...\n", prog.Name, len(input))
	if err := machine.Run(); err != nil {
		return fmt.Errorf("victim execution: %w", err)
	}

	fmt.Print(analyzer.Report(prog.Name))
	if *pairProf {
		machine.FlushPairProfile(reg)
		pairs := machine.PairProfile()
		if len(pairs) > 20 {
			pairs = pairs[:20]
		}
		fmt.Printf("\nhottest dynamic opcode pairs (superinstruction candidates):\n")
		for _, pc := range pairs {
			fmt.Printf("  %-6s -> %-6s %12d\n", pc.First, pc.Second, pc.N)
		}
	}
	if *track > 0 {
		fmt.Printf("\npropagation history of input byte #%d:\n", *track)
		for _, ev := range analyzer.History(taint.Tag(*track)) {
			fmt.Printf("  step %6d  pc %4d  %-28s %s\n", ev.Step, ev.PC, ev.Instr, ev.Note)
		}
	}
	return cli.Finish()
}

func victimNames() []string {
	names := make([]string, 0, len(victims.All()))
	for n := range victims.All() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func loadVictim(name, file string) (*isa.Program, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("use either -victim or -file, not both")
	case name != "":
		p, ok := victims.All()[name]
		if !ok {
			return nil, fmt.Errorf("unknown victim %q (have: %s)", name, strings.Join(victimNames(), ", "))
		}
		return p, nil
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return isa.Assemble(file, string(src))
	default:
		return nil, fmt.Errorf("need -victim or -file (victims: %s)", strings.Join(victimNames(), ", "))
	}
}

func loadInput(file, text string, randomN int, seed int64) ([]byte, error) {
	set := 0
	for _, b := range []bool{file != "", text != "", randomN > 0} {
		if b {
			set++
		}
	}
	if set > 1 {
		return nil, fmt.Errorf("use only one of -input, -text, -random")
	}
	switch {
	case file != "":
		return os.ReadFile(file)
	case text != "":
		return []byte(text), nil
	case randomN > 0:
		b := make([]byte, randomN)
		rand.New(rand.NewSource(seed)).Read(b)
		return b, nil
	default:
		return []byte("the quick brown fox jumps over the lazy dog " + strconv.Itoa(0x5752)), nil
	}
}
