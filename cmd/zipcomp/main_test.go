package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/compress/codec"
)

// TestProcessRoundTrip drives every registry codec through the CLI's
// dispatch path.
func TestProcessRoundTrip(t *testing.T) {
	src := []byte(strings.Repeat("zipcomp says hello hello hello. ", 40))
	for _, name := range codec.Names() {
		comp, err := process(name, false, src)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		back, err := process(name, true, comp)
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(back, src) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

// TestProcessCorruptBWT: a truncated bwt stream must produce a clear error
// (which main turns into a non-zero exit), never output or a panic.
func TestProcessCorruptBWT(t *testing.T) {
	comp, err := process("bwt", false, []byte(strings.Repeat("truncate me ", 64)))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 4, len(comp) / 2, len(comp) - 1} {
		out, err := process("bwt", true, comp[:cut])
		if err == nil {
			t.Fatalf("decompress of %d/%d bytes should fail, got %d bytes out", cut, len(comp), len(out))
		}
		if !strings.Contains(err.Error(), "corrupt or truncated input") {
			t.Fatalf("error should say the input is bad, got: %v", err)
		}
		if !strings.Contains(err.Error(), "bwt") {
			t.Fatalf("error should name the codec, got: %v", err)
		}
	}
}

// TestProcessUnknownCodec lists the registry names in the error.
func TestProcessUnknownCodec(t *testing.T) {
	_, err := process("brotli", false, []byte("x"))
	if err == nil || !strings.Contains(err.Error(), codec.NamesString()) {
		t.Fatalf("want unknown-codec error listing %q, got %v", codec.NamesString(), err)
	}
}

// TestStatsLineUsesRegistryName pins the -stats format and its name source.
func TestStatsLineUsesRegistryName(t *testing.T) {
	line := statsLine("lzw", false, 100, 40)
	if want := "compressed 100 -> 40 bytes (40.0%) with lzw\n"; line != want {
		t.Fatalf("statsLine = %q, want %q", line, want)
	}
	line = statsLine("bwt", true, 40, 100)
	if !strings.HasPrefix(line, "decompressed 40 -> 100 bytes") || !strings.Contains(line, "with bwt") {
		t.Fatalf("statsLine = %q", line)
	}
}
