// Command zipcomp compresses and decompresses files with the repository's
// three from-scratch codecs (the paper's study subjects): the
// DEFLATE-style lz77, the ncompress-style lzw, and the bzip2-style bwt.
// All dispatch goes through the shared registry (internal/compress/codec),
// the same one zipserverd and the §IV survey use.
//
// Usage:
//
//	zipcomp -alg bwt -in corpus.txt -out corpus.bz
//	zipcomp -alg bwt -d -in corpus.bz -out corpus.txt
//	echo "hello hello hello" | zipcomp -alg lz77 | zipcomp -alg lz77 -d
//
// Decompressing corrupt or truncated input exits non-zero with a message
// naming the codec and the decode failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/zipchannel/zipchannel/internal/compress/codec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zipcomp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		alg        = flag.String("alg", "bwt", "codec: "+codec.NamesString())
		decompress = flag.Bool("d", false, "decompress instead of compress")
		inFile     = flag.String("in", "", "input file (default stdin)")
		outFile    = flag.String("out", "", "output file (default stdout)")
		stats      = flag.Bool("stats", false, "print size statistics to stderr")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	src, err := io.ReadAll(in)
	if err != nil {
		return err
	}

	result, err := process(*alg, *decompress, src)
	if err != nil {
		return err
	}

	out := io.Writer(os.Stdout)
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if _, err := out.Write(result); err != nil {
		return err
	}
	if *stats {
		fmt.Fprint(os.Stderr, statsLine(*alg, *decompress, len(src), len(result)))
	}
	return nil
}

// process dispatches one compress/decompress run through the shared codec
// registry. Decompression failures are wrapped so the CLI's exit message
// says plainly that the input stream is bad, not just where decoding died.
func process(alg string, decompress bool, src []byte) ([]byte, error) {
	cd, ok := codec.Lookup(alg)
	if !ok {
		return nil, fmt.Errorf("unknown codec %q (have %s)", alg, codec.NamesString())
	}
	if decompress {
		out, err := cd.Decompress(src)
		if err != nil {
			return nil, fmt.Errorf("cannot decompress with %s — corrupt or truncated input: %w", cd.Name, err)
		}
		return out, nil
	}
	return cd.Compress(src)
}

// statsLine renders the -stats summary, naming the codec via the registry.
func statsLine(alg string, decompress bool, inBytes, outBytes int) string {
	name := alg
	if cd, ok := codec.Lookup(alg); ok {
		name = cd.Name
	}
	dir := "compressed"
	if decompress {
		dir = "decompressed"
	}
	ratio := 0.0
	if inBytes > 0 {
		ratio = float64(outBytes) / float64(inBytes)
	}
	return fmt.Sprintf("%s %d -> %d bytes (%.1f%%) with %s\n",
		dir, inBytes, outBytes, 100*ratio, name)
}
