// Command zipcomp compresses and decompresses files with the repository's
// three from-scratch codecs (the paper's study subjects): the
// DEFLATE-style lz77, the ncompress-style lzw, and the bzip2-style bwt.
//
// Usage:
//
//	zipcomp -alg bwt -in corpus.txt -out corpus.bz
//	zipcomp -alg bwt -d -in corpus.bz -out corpus.txt
//	echo "hello hello hello" | zipcomp -alg lz77 | zipcomp -alg lz77 -d
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/zipchannel/zipchannel/internal/compress/bwt"
	"github.com/zipchannel/zipchannel/internal/compress/lz77"
	"github.com/zipchannel/zipchannel/internal/compress/lzw"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zipcomp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		alg        = flag.String("alg", "bwt", "codec: lz77, lzw, or bwt")
		decompress = flag.Bool("d", false, "decompress instead of compress")
		inFile     = flag.String("in", "", "input file (default stdin)")
		outFile    = flag.String("out", "", "output file (default stdout)")
		stats      = flag.Bool("stats", false, "print size statistics to stderr")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	src, err := io.ReadAll(in)
	if err != nil {
		return err
	}

	var result []byte
	switch *alg {
	case "lz77":
		if *decompress {
			result, err = lz77.Decompress(src)
		} else {
			result, err = lz77.Compress(src, lz77.Options{Lazy: true})
		}
	case "lzw":
		if *decompress {
			result, err = lzw.Decompress(src)
		} else {
			result, err = lzw.Compress(src, nil)
		}
	case "bwt":
		if *decompress {
			result, err = bwt.Decompress(src)
		} else {
			result, err = bwt.Compress(src, bwt.Options{})
		}
	default:
		return fmt.Errorf("unknown codec %q (lz77, lzw, bwt)", *alg)
	}
	if err != nil {
		return err
	}

	out := io.Writer(os.Stdout)
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if _, err := out.Write(result); err != nil {
		return err
	}
	if *stats {
		dir := "compressed"
		if *decompress {
			dir = "decompressed"
		}
		ratio := 0.0
		if len(src) > 0 {
			ratio = float64(len(result)) / float64(len(src))
		}
		fmt.Fprintf(os.Stderr, "%s %d -> %d bytes (%.1f%%) with %s\n",
			dir, len(src), len(result), 100*ratio, *alg)
	}
	return nil
}
