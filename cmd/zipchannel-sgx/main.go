// Command zipchannel-sgx runs the paper's first end-to-end attack (§V):
// it leaks the data a simulated SGX enclave compresses with the bzip2
// histogram gadget, via controlled-channel single-stepping, Prime+Probe
// with Intel CAT, and frame selection, then prints the recovered bytes
// and the accuracy against ground truth.
//
// Usage:
//
//	zipchannel-sgx -size 10240                 # the §V-E headline setup
//	zipchannel-sgx -text "attack at dawn"      # leak a chosen secret
//	zipchannel-sgx -size 2048 -no-cat          # ablation
//	zipchannel-sgx -size 64 -oblivious         # the §VIII mitigation
//	zipchannel-sgx -victim lzw -size 2048      # the ncompress gadget (E13)
//	zipchannel-sgx -victim zlib -text "lowercasesecret" -charset
//	zipchannel-sgx -size 2048 -repeat 8 -parallel 4    # repetition sweep
//	zipchannel-sgx -size 2048 -metrics m.json -trace t.ndjson -progress
//
// -repeat N runs N independent attack repetitions, each deterministically
// seeded by splitting -seed per trial, and reports per-trial plus
// aggregate accuracy; -parallel fans the repetitions across workers
// without changing any output byte.
//
// Telemetry: -metrics writes the final counter/gauge/histogram snapshot
// (canonical JSON, byte-identical under a fixed seed), -trace streams
// NDJSON events, -progress prints a live status line to stderr.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"
	"unicode"

	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"
	"github.com/zipchannel/zipchannel/internal/zipchannel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zipchannel-sgx:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		size      = flag.Int("size", 10240, "random secret size in bytes")
		seed      = flag.Int64("seed", 42, "random seed")
		text      = flag.String("text", "", "leak this text instead of random bytes")
		inputFile = flag.String("input", "", "leak this file's contents")
		noCAT     = flag.Bool("no-cat", false, "disable Intel CAT isolation (§V-C1 ablation)")
		noFS      = flag.Bool("no-frame-selection", false, "disable frame selection (§V-C2 ablation)")
		oblivious = flag.Bool("oblivious", false, "attack the §VIII oblivious-histogram victim")
		noise     = flag.Float64("noise", 4, "other-application accesses per transition")
		preview   = flag.Int("preview", 256, "bytes of recovered data to print")
		victim    = flag.String("victim", "bzip2", "gadget to attack: bzip2, zlib, or lzw")
		charset   = flag.Bool("charset", false, "zlib only: assume lowercase-ASCII input (§IV-B)")
		repeat    = flag.Int("repeat", 1, "independent attack repetitions, deterministically seeded from -seed")
		parallel  = flag.Int("parallel", 0, "worker count for repetitions (<=0: GOMAXPROCS); output is identical at any level")
	)
	var cli obs.CLI
	cli.Bind(flag.CommandLine)
	flag.Parse()

	if *repeat < 1 {
		return fmt.Errorf("-repeat must be >= 1")
	}

	// A chosen secret (text or file) is shared across repetitions; random
	// secrets are regenerated per trial from the trial's split seed.
	var fixed []byte
	switch {
	case *text != "":
		fixed = []byte(*text)
	case *inputFile != "":
		b, err := os.ReadFile(*inputFile)
		if err != nil {
			return err
		}
		fixed = b
	}
	secretLen := *size
	if fixed != nil {
		secretLen = len(fixed)
	}

	base := zipchannel.DefaultConfig()
	base.UseCAT = !*noCAT
	base.UseFrameSelection = !*noFS
	base.Oblivious = *oblivious
	base.OtherNoiseRate = *noise

	reg, err := cli.Start()
	if err != nil {
		return err
	}
	defer cli.Finish()

	fmt.Fprintf(os.Stderr, "attacking %d secret bytes inside the enclave via the %s gadget (CAT=%v, frame-selection=%v, oblivious=%v, repetitions=%d)...\n",
		secretLen, *victim, base.UseCAT, base.UseFrameSelection, base.Oblivious, *repeat)

	// Each repetition runs against a private registry with its own split
	// seed; registries merge into the shared one in trial order, so the
	// -metrics snapshot is identical at any -parallel level.
	type trial struct {
		input []byte
		res   *zipchannel.Result
		reg   *obs.Registry
	}
	trials := make([]trial, *repeat)
	start := time.Now()
	err = par.ForEach(*parallel, *repeat, func(i int) error {
		cfg := base
		cfg.Seed = *seed
		if *repeat > 1 {
			cfg.Seed = par.SplitSeed(*seed, fmt.Sprintf("trial/%d", i))
		}
		input := fixed
		if input == nil {
			input = make([]byte, *size)
			rand.New(rand.NewSource(cfg.Seed)).Read(input)
		}
		treg := obs.NewRegistry()
		cfg.Obs = treg
		var res *zipchannel.Result
		var err error
		switch *victim {
		case "bzip2":
			res, err = zipchannel.Attack(input, cfg)
		case "zlib":
			res, err = zipchannel.ZlibAttack(input, 0x60, *charset, cfg)
		case "lzw":
			res, err = zipchannel.LZWAttack(input, cfg)
		default:
			return fmt.Errorf("unknown victim %q (bzip2, zlib, lzw)", *victim)
		}
		if err != nil {
			return fmt.Errorf("trial %d: %w", i, err)
		}
		trials[i] = trial{input: input, res: res, reg: treg}
		return nil
	})
	if err != nil {
		return err
	}
	for i := range trials {
		reg.Merge(trials[i].reg)
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))

	if *repeat == 1 {
		res := trials[0].res
		fmt.Println(res)
		fmt.Printf("cache: %d hits, %d misses, %d evictions, %d flushes\n",
			res.CacheHits, res.CacheMisses, res.CacheEvictions, res.CacheFlushes)
		fmt.Printf("recovery: %d/%d bytes pinned directly, %d corrected by redundancy\n",
			res.KnownBytes-res.CorrectedBytes, secretLen, res.CorrectedBytes)

		n := min(*preview, len(res.Recovered))
		fmt.Printf("\nrecovered data (first %d bytes):\n%s\n", n, printable(res.Recovered[:n]))
		return cli.Finish()
	}

	var bitSum, byteSum, bitMin float64
	bitMin = 1
	for i := range trials {
		res := trials[i].res
		fmt.Printf("trial %2d: %s\n", i, res)
		bitSum += res.BitAcc
		byteSum += res.ByteAcc
		if res.BitAcc < bitMin {
			bitMin = res.BitAcc
		}
	}
	n := float64(*repeat)
	fmt.Printf("\naggregate over %d trials: mean bit acc %.2f%%, mean byte acc %.2f%%, worst bit acc %.2f%%\n",
		*repeat, 100*bitSum/n, 100*byteSum/n, 100*bitMin)
	return cli.Finish()
}

func printable(b []byte) string {
	out := make([]rune, len(b))
	for i, c := range b {
		if unicode.IsPrint(rune(c)) && c < 0x80 {
			out[i] = rune(c)
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
