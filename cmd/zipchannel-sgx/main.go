// Command zipchannel-sgx runs the paper's first end-to-end attack (§V):
// it leaks the data a simulated SGX enclave compresses with the bzip2
// histogram gadget, via controlled-channel single-stepping, Prime+Probe
// with Intel CAT, and frame selection, then prints the recovered bytes
// and the accuracy against ground truth.
//
// Usage:
//
//	zipchannel-sgx -size 10240                 # the §V-E headline setup
//	zipchannel-sgx -text "attack at dawn"      # leak a chosen secret
//	zipchannel-sgx -size 2048 -no-cat          # ablation
//	zipchannel-sgx -size 64 -oblivious         # the §VIII mitigation
//	zipchannel-sgx -victim lzw -size 2048      # the ncompress gadget (E13)
//	zipchannel-sgx -victim zlib -text "lowercasesecret" -charset
//	zipchannel-sgx -size 2048 -metrics m.json -trace t.ndjson -progress
//
// Telemetry: -metrics writes the final counter/gauge/histogram snapshot
// (canonical JSON, byte-identical under a fixed seed), -trace streams
// NDJSON events, -progress prints a live status line to stderr.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"unicode"

	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/zipchannel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zipchannel-sgx:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		size      = flag.Int("size", 10240, "random secret size in bytes")
		seed      = flag.Int64("seed", 42, "random seed")
		text      = flag.String("text", "", "leak this text instead of random bytes")
		inputFile = flag.String("input", "", "leak this file's contents")
		noCAT     = flag.Bool("no-cat", false, "disable Intel CAT isolation (§V-C1 ablation)")
		noFS      = flag.Bool("no-frame-selection", false, "disable frame selection (§V-C2 ablation)")
		oblivious = flag.Bool("oblivious", false, "attack the §VIII oblivious-histogram victim")
		noise     = flag.Float64("noise", 4, "other-application accesses per transition")
		preview   = flag.Int("preview", 256, "bytes of recovered data to print")
		victim    = flag.String("victim", "bzip2", "gadget to attack: bzip2, zlib, or lzw")
		charset   = flag.Bool("charset", false, "zlib only: assume lowercase-ASCII input (§IV-B)")
	)
	var cli obs.CLI
	cli.Bind(flag.CommandLine)
	flag.Parse()

	var input []byte
	switch {
	case *text != "":
		input = []byte(*text)
	case *inputFile != "":
		b, err := os.ReadFile(*inputFile)
		if err != nil {
			return err
		}
		input = b
	default:
		input = make([]byte, *size)
		rand.New(rand.NewSource(*seed)).Read(input)
	}

	cfg := zipchannel.DefaultConfig()
	cfg.UseCAT = !*noCAT
	cfg.UseFrameSelection = !*noFS
	cfg.Oblivious = *oblivious
	cfg.OtherNoiseRate = *noise
	cfg.Seed = *seed

	reg, err := cli.Start()
	if err != nil {
		return err
	}
	defer cli.Finish()
	cfg.Obs = reg

	fmt.Fprintf(os.Stderr, "attacking %d secret bytes inside the enclave via the %s gadget (CAT=%v, frame-selection=%v, oblivious=%v)...\n",
		len(input), *victim, cfg.UseCAT, cfg.UseFrameSelection, cfg.Oblivious)
	var res *zipchannel.Result
	switch *victim {
	case "bzip2":
		res, err = zipchannel.Attack(input, cfg)
	case "zlib":
		res, err = zipchannel.ZlibAttack(input, 0x60, *charset, cfg)
	case "lzw":
		res, err = zipchannel.LZWAttack(input, cfg)
	default:
		return fmt.Errorf("unknown victim %q (bzip2, zlib, lzw)", *victim)
	}
	if err != nil {
		return err
	}
	fmt.Println(res)
	fmt.Printf("cache: %d hits, %d misses, %d evictions, %d flushes\n",
		res.CacheHits, res.CacheMisses, res.CacheEvictions, res.CacheFlushes)
	fmt.Printf("recovery: %d/%d bytes pinned directly, %d corrected by redundancy\n",
		res.KnownBytes-res.CorrectedBytes, len(input), res.CorrectedBytes)

	n := min(*preview, len(res.Recovered))
	fmt.Printf("\nrecovered data (first %d bytes):\n%s\n", n, printable(res.Recovered[:n]))
	return cli.Finish()
}

func printable(b []byte) string {
	out := make([]rune, len(b))
	for i, c := range b {
		if unicode.IsPrint(rune(c)) && c < 0x80 {
			out[i] = rune(c)
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
