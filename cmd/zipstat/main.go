// Command zipstat is a live terminal dashboard over one or more zipserverd
// instances. Each interval it polls every target's GET /metrics (canonical
// obs snapshot) and GET /healthz, and renders a fleet table: request rate,
// cache hit rate, latency quantiles (p50/p95/p99 estimated from the
// server's log-bucketed latency histogram), circuit-breaker states, and
// fault-point hit counts per instance.
//
// Usage:
//
//	zipstat http://127.0.0.1:8321 http://127.0.0.1:8322
//	zipstat -interval 1s http://host:8321
//	zipstat -once -json http://127.0.0.1:8321   # one poll, machine-readable
//
// In watch mode the RPS column is the request delta between consecutive
// polls divided by the poll gap; the first sample (and -once mode) falls
// back to lifetime requests / uptime. A target that fails either endpoint
// renders as a DOWN row instead of aborting the dashboard; plain -once
// still exits 0 so a partially-degraded fleet can be inspected. Scripts
// that need a hard health probe add -require: -once -require exits
// non-zero listing every unreachable address.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/zipchannel/zipchannel/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zipstat:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		interval = flag.Duration("interval", 2*time.Second, "poll interval in watch mode")
		once     = flag.Bool("once", false, "poll each target once, print, and exit")
		require  = flag.Bool("require", false, "with -once: exit non-zero if any target is unreachable, listing all of them")
		jsonOut  = flag.Bool("json", false, "with -once: emit one JSON array of per-target stats")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
	)
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"http://127.0.0.1:8321"}
	}
	for i, t := range targets {
		targets[i] = strings.TrimRight(t, "/")
	}
	httpc := &http.Client{Timeout: *timeout}

	if *once {
		stats := collectAll(httpc, targets, nil)
		if *jsonOut {
			b, err := json.MarshalIndent(stats, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(b))
		} else {
			renderTable(os.Stdout, stats)
		}
		if down := unreachableTargets(stats); *require && len(down) > 0 {
			return fmt.Errorf("unreachable targets: %s", strings.Join(down, ", "))
		}
		return nil
	}
	if *jsonOut {
		return fmt.Errorf("-json requires -once (watch mode is for humans)")
	}
	if *require {
		return fmt.Errorf("-require requires -once (watch mode renders DOWN rows instead)")
	}

	var prev []instanceStats
	for {
		stats := collectAll(httpc, targets, prev)
		// Repaint in place: cursor home + clear-to-end keeps the table
		// steady instead of scrolling.
		fmt.Print("\x1b[H\x1b[2J")
		fmt.Printf("zipstat  %s  (interval %s, %d target(s); Ctrl-C to quit)\n\n",
			time.Now().Format("15:04:05"), *interval, len(targets))
		renderTable(os.Stdout, stats)
		prev = stats
		time.Sleep(*interval)
	}
}

// instanceStats is one target's dashboard row — also the -once -json
// schema, so every field a script needs is exported here.
type instanceStats struct {
	Target  string `json:"target"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`

	Version        string  `json:"version,omitempty"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	UptimeSimSteps uint64  `json:"uptime_sim_steps"`

	Requests    uint64  `json:"requests"`
	RPS         float64 `json:"rps"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"` // hits/(hits+misses), 0 when no lookups

	LatencyP50US float64 `json:"latency_p50_us"`
	LatencyP95US float64 `json:"latency_p95_us"`
	LatencyP99US float64 `json:"latency_p99_us"`

	Breakers map[string]string `json:"breakers,omitempty"` // codec/op -> state
	Faults   map[string]uint64 `json:"faults,omitempty"`   // fault.* counters

	// Overload mirrors the healthz admission section (absent when the
	// instance runs with shedding disabled); PeerState is the peer tier's
	// probation breaker ("closed", "open", "trial"; absent without one).
	OverloadState string `json:"overload_state,omitempty"`
	ShedTotal     uint64 `json:"shed_total"`
	QueueDepth    int    `json:"queue_depth"`
	PeerState     string `json:"peer_state,omitempty"`

	// sampledAt feeds the watch-mode RPS delta; not part of the JSON
	// contract.
	sampledAt time.Time
}

// health mirrors the subset of the server's /healthz body zipstat uses.
type health struct {
	Version        string            `json:"version"`
	UptimeSimSteps uint64            `json:"uptime_sim_steps"`
	UptimeSeconds  float64           `json:"uptime_seconds"`
	Breakers       map[string]string `json:"breakers"`
	Overload       *struct {
		State      string `json:"state"`
		QueueDepth int    `json:"queue_depth"`
		Shed       uint64 `json:"shed_total"`
	} `json:"overload"`
	Cache struct {
		PeerState string `json:"peer_state"`
	} `json:"cache"`
}

// collectAll polls every target, computing RPS against the matching entry
// of the previous round when available.
func collectAll(httpc *http.Client, targets []string, prev []instanceStats) []instanceStats {
	stats := make([]instanceStats, len(targets))
	for i, target := range targets {
		st := collect(httpc, target)
		if st.Healthy {
			if prev != nil && i < len(prev) && prev[i].Healthy && prev[i].Requests <= st.Requests {
				if dt := st.sampledAt.Sub(prev[i].sampledAt).Seconds(); dt > 0 {
					st.RPS = float64(st.Requests-prev[i].Requests) / dt
				}
			} else if st.UptimeSeconds > 0 {
				st.RPS = float64(st.Requests) / st.UptimeSeconds
			}
		}
		stats[i] = st
	}
	return stats
}

// unreachableTargets lists every target that failed collection, in input
// order — the -once -require exit message names all of them, not just the
// first, so one probe run diagnoses the whole fleet.
func unreachableTargets(stats []instanceStats) []string {
	var down []string
	for _, st := range stats {
		if !st.Healthy {
			down = append(down, st.Target)
		}
	}
	return down
}

// collect polls one target's /metrics and /healthz and reduces them to a
// dashboard row. Any failure marks the instance unhealthy with the error
// preserved — a dead instance is a row, not a crashed dashboard.
func collect(httpc *http.Client, target string) instanceStats {
	st := instanceStats{Target: target, sampledAt: time.Now()}
	snap, err := fetchSnapshot(httpc, target+"/metrics")
	if err != nil {
		st.Error = err.Error()
		return st
	}
	var h health
	if err := fetchJSON(httpc, target+"/healthz", &h); err != nil {
		st.Error = err.Error()
		return st
	}
	st.Healthy = true
	st.Version = h.Version
	st.UptimeSeconds = h.UptimeSeconds
	st.UptimeSimSteps = h.UptimeSimSteps
	if len(h.Breakers) > 0 {
		st.Breakers = h.Breakers
	}
	if h.Overload != nil {
		st.OverloadState = h.Overload.State
		st.QueueDepth = h.Overload.QueueDepth
		st.ShedTotal = h.Overload.Shed
	}
	st.PeerState = h.Cache.PeerState

	st.Requests = snap.Counters["server.requests"]
	st.CacheHits = snap.Counters["server.cache.hits"]
	st.CacheMisses = snap.Counters["server.cache.misses"]
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.HitRate = float64(st.CacheHits) / float64(lookups)
	}
	if hs, ok := snap.Histograms["server.request_latency_us"]; ok && hs.Count > 0 {
		q := hs.Quantiles(0.5, 0.95, 0.99)
		st.LatencyP50US, st.LatencyP95US, st.LatencyP99US = q[0], q[1], q[2]
	}
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "fault.") {
			if st.Faults == nil {
				st.Faults = map[string]uint64{}
			}
			st.Faults[name] = v
		}
	}
	return st
}

func fetchSnapshot(httpc *http.Client, url string) (*obs.Snapshot, error) {
	var snap obs.Snapshot
	if err := fetchJSON(httpc, url, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

func fetchJSON(httpc *http.Client, url string, dst any) error {
	resp, err := httpc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// renderTable prints the fleet table plus a fault-count detail line for
// any instance with nonzero fault counters.
func renderTable(w io.Writer, stats []instanceStats) {
	fmt.Fprintf(w, "%-28s %9s %8s %6s %9s %9s %9s  %s\n",
		"TARGET", "REQS", "RPS", "HIT%", "p50(us)", "p95(us)", "p99(us)", "BREAKERS")
	for _, st := range stats {
		if !st.Healthy {
			fmt.Fprintf(w, "%-28s DOWN: %s\n", st.Target, st.Error)
			continue
		}
		fmt.Fprintf(w, "%-28s %9d %8.1f %6.1f %9.0f %9.0f %9.0f  %s\n",
			st.Target, st.Requests, st.RPS, 100*st.HitRate,
			st.LatencyP50US, st.LatencyP95US, st.LatencyP99US, breakerSummary(st.Breakers))
	}
	// Degraded-mode detail lines: only instances that are actually shedding,
	// saturated, or holding a non-closed peer breaker get one, so a healthy
	// fleet's table is unchanged.
	for _, st := range stats {
		var parts []string
		if st.OverloadState != "" && st.OverloadState != "ok" {
			parts = append(parts, "overload="+st.OverloadState)
		}
		if st.ShedTotal > 0 {
			parts = append(parts, fmt.Sprintf("shed=%d queue=%d", st.ShedTotal, st.QueueDepth))
		}
		if st.PeerState != "" && st.PeerState != "closed" {
			parts = append(parts, "peer="+st.PeerState)
		}
		if len(parts) > 0 {
			fmt.Fprintf(w, "\n%s degraded: %s\n", st.Target, strings.Join(parts, " "))
		}
	}
	for _, st := range stats {
		if len(st.Faults) == 0 {
			continue
		}
		names := make([]string, 0, len(st.Faults))
		for name := range st.Faults {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s=%d", strings.TrimPrefix(name, "fault."), st.Faults[name])
		}
		fmt.Fprintf(w, "\n%s faults: %s\n", st.Target, strings.Join(parts, " "))
	}
}

// breakerSummary compresses the breaker map: "-" before any traffic,
// "all closed (n)" when nothing is tripped, else the non-closed pairs.
func breakerSummary(breakers map[string]string) string {
	if len(breakers) == 0 {
		return "-"
	}
	var bad []string
	for key, state := range breakers {
		if state != "closed" {
			bad = append(bad, key+"="+state)
		}
	}
	if len(bad) == 0 {
		return fmt.Sprintf("all closed (%d)", len(breakers))
	}
	sort.Strings(bad)
	return strings.Join(bad, " ")
}
