package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/server"
)

// TestCollectMatchesServerMetrics is the scripting-mode contract: the
// values zipstat reports for a target must equal what the server's own
// /metrics and /healthz endpoints say.
func TestCollectMatchesServerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(server.Config{Registry: reg, Tracer: obs.NewTracer(reg, 3)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	payload := []byte(strings.Repeat("zipstat collect payload ", 20))
	for i := 0; i < 3; i++ { // 1 miss + 2 hits
		resp, err := http.Post(ts.URL+"/v1/lzw/compress", "application/octet-stream",
			bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	httpc := &http.Client{Timeout: 5 * time.Second}
	st := collect(httpc, ts.URL)
	if !st.Healthy {
		t.Fatalf("collect: unhealthy: %s", st.Error)
	}

	snap := reg.Snapshot()
	if st.Requests != snap.Counters["server.requests"] {
		t.Errorf("Requests = %d, server says %d", st.Requests, snap.Counters["server.requests"])
	}
	if st.CacheHits != snap.Counters["server.cache.hits"] || st.CacheMisses != snap.Counters["server.cache.misses"] {
		t.Errorf("cache %d/%d, server says %d/%d", st.CacheHits, st.CacheMisses,
			snap.Counters["server.cache.hits"], snap.Counters["server.cache.misses"])
	}
	if want := 2.0 / 3.0; st.HitRate < want-1e-9 || st.HitRate > want+1e-9 {
		t.Errorf("HitRate = %v, want %v", st.HitRate, want)
	}
	h := snap.Histograms["server.request_latency_us"]
	if q := h.Quantiles(0.5, 0.95, 0.99); st.LatencyP50US != q[0] || st.LatencyP95US != q[1] || st.LatencyP99US != q[2] {
		t.Errorf("quantiles (%v %v %v), server histogram says %v",
			st.LatencyP50US, st.LatencyP95US, st.LatencyP99US, q)
	}
	if st.UptimeSimSteps != 3 {
		t.Errorf("UptimeSimSteps = %d, want 3 (one per /v1 request)", st.UptimeSimSteps)
	}
	if st.Breakers["lzw/compress"] != "closed" {
		t.Errorf("Breakers = %v, want lzw/compress closed", st.Breakers)
	}

	// The -json schema: stable keys a script can depend on.
	b, err := json.Marshal([]instanceStats{st})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"target"`, `"healthy"`, `"requests"`, `"rps"`,
		`"hit_rate"`, `"latency_p50_us"`, `"latency_p95_us"`, `"latency_p99_us"`,
		`"breakers"`, `"uptime_sim_steps"`} {
		if !bytes.Contains(b, []byte(key)) {
			t.Errorf("-once -json output missing %s:\n%s", key, b)
		}
	}
}

// TestCollectDownTarget: an unreachable target is an unhealthy row, not an
// error that kills the dashboard.
func TestCollectDownTarget(t *testing.T) {
	httpc := &http.Client{Timeout: 200 * time.Millisecond}
	st := collect(httpc, "http://127.0.0.1:1")
	if st.Healthy || st.Error == "" {
		t.Fatalf("down target: healthy=%v error=%q", st.Healthy, st.Error)
	}
	var buf bytes.Buffer
	renderTable(&buf, []instanceStats{st})
	if !strings.Contains(buf.String(), "DOWN") {
		t.Fatalf("table for down target:\n%s", buf.String())
	}
}

// TestCollectAllRPSDelta: watch mode computes RPS from the request delta
// between consecutive polls.
func TestCollectAllRPSDelta(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	httpc := &http.Client{Timeout: 5 * time.Second}

	first := collectAll(httpc, []string{ts.URL}, nil)
	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/v1/lz77/compress", "application/octet-stream",
			bytes.NewReader([]byte("rps delta payload")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	time.Sleep(20 * time.Millisecond) // a nonzero poll gap for the delta
	second := collectAll(httpc, []string{ts.URL}, first)
	if got := second[0].Requests - first[0].Requests; got != 5 {
		t.Fatalf("request delta = %d, want 5", got)
	}
	if second[0].RPS <= 0 {
		t.Fatalf("watch-mode RPS = %v, want > 0", second[0].RPS)
	}
}

func TestBreakerSummary(t *testing.T) {
	cases := []struct {
		in   map[string]string
		want string
	}{
		{nil, "-"},
		{map[string]string{"a/x": "closed", "b/y": "closed"}, "all closed (2)"},
		{map[string]string{"a/x": "open", "b/y": "closed", "c/z": "trial"}, "a/x=open c/z=trial"},
	}
	for _, c := range cases {
		if got := breakerSummary(c.in); got != c.want {
			t.Errorf("breakerSummary(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestUnreachableTargets: -once -require names every down target, not
// just the first one.
func TestUnreachableTargets(t *testing.T) {
	stats := []instanceStats{
		{Target: "http://a:1", Healthy: false, Error: "refused"},
		{Target: "http://b:2", Healthy: true},
		{Target: "http://c:3", Healthy: false, Error: "timeout"},
	}
	down := unreachableTargets(stats)
	if len(down) != 2 || down[0] != "http://a:1" || down[1] != "http://c:3" {
		t.Fatalf("unreachableTargets = %v, want both down addresses in order", down)
	}
	if got := unreachableTargets(stats[1:2]); len(got) != 0 {
		t.Fatalf("healthy fleet reported unreachable: %v", got)
	}
}

// TestCollectOverloadAndPeerState: the healthz overload section and peer
// probation state surface in the row (and its degraded detail line) so
// dashboards see shedding without scraping raw metrics.
func TestCollectOverloadAndPeerState(t *testing.T) {
	srv := server.New(server.Config{Workers: 1, QueueLimit: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	httpc := &http.Client{Timeout: 5 * time.Second}

	st := collect(httpc, ts.URL)
	if !st.Healthy {
		t.Fatalf("collect: unhealthy: %s", st.Error)
	}
	if st.OverloadState != "ok" {
		t.Fatalf("OverloadState = %q, want ok on an idle server", st.OverloadState)
	}

	// A synthetic degraded row renders its detail line; the healthy row
	// from the live server does not.
	var buf bytes.Buffer
	degraded := instanceStats{Target: "http://x:1", Healthy: true,
		OverloadState: "saturated", ShedTotal: 7, QueueDepth: 3, PeerState: "open"}
	renderTable(&buf, []instanceStats{st, degraded})
	out := buf.String()
	if !strings.Contains(out, "http://x:1 degraded: overload=saturated shed=7 queue=3 peer=open") {
		t.Fatalf("degraded detail line missing:\n%s", out)
	}
	if strings.Contains(out, ts.URL+" degraded:") {
		t.Fatalf("healthy instance got a degraded line:\n%s", out)
	}

	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"overload_state"`, `"shed_total"`, `"queue_depth"`} {
		if !bytes.Contains(b, []byte(key)) {
			t.Errorf("-once -json output missing %s:\n%s", key, b)
		}
	}
}
